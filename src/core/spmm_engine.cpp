#include "core/spmm_engine.hpp"

#include <optional>

#include "analysis/sampling.hpp"
#include "util/error.hpp"

namespace nmdt {

double EngineOptions::default_ssf_threshold() {
  // Learned on the medium standard suite under evaluation_config()
  // (bench/fig04_ssf_heuristic re-derives and prints the trained value;
  // EXPERIMENTS.md records the training accuracy).
  return 3.2e4;
}

SpmmEngine::SpmmEngine(EngineOptions options) : options_(std::move(options)) {
  options_.spmm.arch.validate();
  options_.spmm.tiling.validate();
  NMDT_CHECK_CONFIG(
      options_.profile_sample_fraction > 0.0 && options_.profile_sample_fraction <= 1.0,
      "profile_sample_fraction must be in (0, 1]");
}

SpmmResult SpmmEngine::run_kernel(KernelKind kind, const Csr& A,
                                  const DenseMatrix& B) const {
  return run_spmm(kind, A, B, options_.spmm);
}

SpmmReport SpmmEngine::run(const Csr& A, const DenseMatrix& B) const {
  SpmmReport report;
  if (options_.profile_sample_fraction < 1.0) {
    report.profile =
        profile_matrix_sampled(A, options_.spmm.tiling, options_.profile_sample_fraction,
                               /*seed=*/0x5a3d)
            .profile;
  } else {
    report.profile = profile_matrix(A, options_.spmm.tiling);
  }
  report.chosen = select_strategy(report.profile.ssf, options_.ssf_threshold);
  report.kernel = report.chosen == Strategy::kBStationary
                      ? KernelKind::kTiledDcsrOnline
                      : KernelKind::kDcsrCStationary;
  report.result = run_spmm(report.kernel, A, B, options_.spmm);

  if (options_.verify) {
    const DenseMatrix ref = spmm_reference(A, B);
    report.max_abs_error = report.result.C.max_abs_diff(ref);
  }
  if (options_.run_baseline) {
    report.baseline = run_spmm(KernelKind::kCsrCStationaryRowWarp, A, B, options_.spmm);
    if (report.result.timing.total_ns > 0.0) {
      report.speedup_vs_baseline =
          report.baseline->timing.total_ns / report.result.timing.total_ns;
    }
  }
  return report;
}

std::vector<SuiteRow> run_suite(std::span<const MatrixSpec> specs, const SpmmConfig& cfg,
                                index_t K, const SuiteProgress& progress) {
  NMDT_CHECK_CONFIG(K > 0, "run_suite requires K > 0");
  std::vector<std::optional<SuiteRow>> slots(specs.size());
  usize done = 0;

  // Matrices are independent; modelled timing depends only on matrix
  // structure (never on B's values), so per-spec seeding keeps results
  // identical at any thread count.
#pragma omp parallel for schedule(dynamic)
  for (i64 i = 0; i < static_cast<i64>(specs.size()); ++i) {
    const usize idx = static_cast<usize>(i);
    SuiteRow row;
    row.spec = specs[idx];
    const Csr A = specs[idx].generate();
    if (A.nnz() == 0) continue;  // degenerate draw: nothing to measure
    Rng b_rng(0xb0b0 + static_cast<u64>(idx));
    DenseMatrix B(A.cols, K);
    B.randomize(b_rng);

    row.profile = profile_matrix(A, cfg.tiling);
    row.t_baseline_ms =
        run_spmm(KernelKind::kCsrCStationaryRowWarp, A, B, cfg).timing.total_ms();
    row.t_dcsr_c_ms = run_spmm(KernelKind::kDcsrCStationary, A, B, cfg).timing.total_ms();
    row.t_online_b_ms = run_spmm(KernelKind::kTiledDcsrOnline, A, B, cfg).timing.total_ms();
    const SpmmResult offline = run_spmm(KernelKind::kTiledDcsrBStationary, A, B, cfg);
    row.t_offline_b_ms = offline.timing.total_ms();
    row.offline_prep_ms = offline.offline_prep_ns * 1e-6;

    slots[idx] = std::move(row);
    if (progress) {
#pragma omp critical(nmdt_suite_progress)
      progress(++done, specs.size(), *slots[idx]);
    }
  }

  std::vector<SuiteRow> rows;
  rows.reserve(specs.size());
  for (auto& slot : slots) {
    if (slot.has_value()) rows.push_back(std::move(*slot));
  }
  return rows;
}

SsfThreshold train_threshold(std::span<const SuiteRow> rows) {
  std::vector<SsfSample> samples;
  samples.reserve(rows.size());
  for (const auto& r : rows) {
    samples.push_back({r.profile.ssf, r.ratio_c_over_b()});
  }
  return learn_ssf_threshold(samples);
}

}  // namespace nmdt
