#include "core/plan.hpp"

#include "analysis/sampling.hpp"
#include "fault/fault.hpp"
#include "formats/footprint.hpp"
#include "formats/retype.hpp"
#include "obs/profiler.hpp"
#include "obs/scoped_timer.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"

namespace nmdt {

double default_ssf_threshold() {
  // Learned on the medium standard suite under evaluation_config()
  // (bench/fig04_ssf_heuristic re-derives and prints the trained value).
  return 3.2e4;
}

template <class V>
SpmmOperandsT<V> PlanOperandsT<V>::bundle() const {
  SpmmOperandsT<V> ops;
  ops.csr = &csr;
  ops.csc = &csc;
  ops.dcsr = &dcsr;
  ops.tiled_dcsr = &tiled_dcsr;
  ops.tiled_csr = &tiled_csr;
  ops.strip_nnz = &strip_nnz;
  return ops;
}

template <class V>
i64 PlanOperandsT<V>::bytes() const {
  return footprint(csr).total() + footprint(csc).total() + footprint(dcsr).total() +
         footprint(tiled_dcsr).total() + footprint(tiled_csr).total() +
         static_cast<i64>(strip_nnz.counts.size()) * static_cast<i64>(sizeof(i64));
}

template struct PlanOperandsT<float>;
template struct PlanOperandsT<double>;
template struct PlanOperandsT<bf16_t>;

namespace {

/// Derive every converted operand format from the retyped CSR matrix.
/// Each conversion is timed separately: both as a child span and as an
/// observation into the shared plan.convert_ms histogram.
template <class V>
PlanOperandsT<V> build_operands(CsrT<V> a, const TilingSpec& tiling) {
  auto convert = [](const char* span_name, auto&& body) {
    obs::TraceSpan s(span_name);
    obs::ScopedTimer t("plan.convert_ms");
    body();
  };
  PlanOperandsT<V> ops;
  ops.csr = std::move(a);
  convert("plan.convert.csc", [&] { ops.csc = csc_from_csr(ops.csr); });
  convert("plan.convert.dcsr", [&] { ops.dcsr = dcsr_from_csr(ops.csr); });
  convert("plan.convert.tiled_dcsr",
          [&] { ops.tiled_dcsr = tiled_dcsr_from_csr(ops.csr, tiling); });
  convert("plan.convert.tiled_csr",
          [&] { ops.tiled_csr = tiled_csr_from_csr(ops.csr, tiling); });
  convert("plan.convert.strip_nnz",
          [&] { ops.strip_nnz = strip_nnz_of(ops.csr, tiling); });
  return ops;
}

}  // namespace

SpmmPlan::SpmmPlan(const Csr& A, const PlanOptions& opts) : options_(opts) {
  opts.tiling.validate();
  NMDT_CHECK_CONFIG(
      opts.profile_sample_fraction > 0.0 && opts.profile_sample_fraction <= 1.0,
      "profile_sample_fraction must be in (0, 1]");
  obs::TraceSpan span("plan.build");
  obs::ProfScope prof(span);  // hw.* args when profiling is enabled
  obs::ScopedTimer timer("plan.build_ms");
  obs::MetricsRegistry::global().counter("plan.builds").add(1);
  {
    NMDT_TRACE_SCOPE("plan.fingerprint");
    // Canonical-input fingerprint: precision selection never changes the
    // cache identity of the matrix, only the PlanOptions half of the key.
    fingerprint_ = fingerprint_of(A);
  }
  {
    NMDT_TRACE_SCOPE("plan.profile");
    obs::ScopedTimer t("plan.profile_ms");
    // The profile is structural (row lengths, strip occupancy) — computed
    // once from the canonical matrix, valid at every precision.
    if (opts.profile_sample_fraction < 1.0) {
      profile_ = profile_matrix_sampled(A, opts.tiling, opts.profile_sample_fraction,
                                        /*seed=*/0x5a3d)
                     .profile;
    } else {
      profile_ = profile_matrix(A, opts.tiling);
    }
  }
  strategy_ = select_strategy(profile_.ssf, opts.ssf_threshold);
  kernel_ = strategy_ == Strategy::kBStationary ? KernelKind::kTiledDcsrOnline
                                                : KernelKind::kDcsrCStationary;
  // Retype once, then derive all formats at the plan's precision —
  // structural conversions commute with retyping, so every operand sees
  // the same once-rounded values (formats/retype.hpp).
  dispatch_precision(opts.precision, [&](auto tag) {
    using V = typename decltype(tag)::type;
    ops_ = build_operands<V>(retype<V>(A), opts.tiling);
    bytes_ = std::get<PlanOperandsT<V>>(ops_).bytes();
  });
  build_ms_ = timer.stop();
  span.arg("rows", static_cast<i64>(A.rows))
      .arg("cols", static_cast<i64>(A.cols))
      .arg("nnz", static_cast<i64>(A.nnz()))
      .arg("ssf", profile_.ssf)
      .arg("strategy", strategy_name(strategy_))
      .arg("kernel", kernel_name(kernel_))
      .arg("precision", precision_name(opts.precision))
      .arg("bytes", bytes_);
}

std::shared_ptr<const SpmmPlan> build_plan(const Csr& A, const PlanOptions& opts) {
  return std::make_shared<const SpmmPlan>(A, opts);
}

usize PlanCache::KeyHash::operator()(const Key& k) const {
  u64 h = k.fp.combined();
  h = fnv1a64(&k.opts.tiling.strip_width, sizeof(index_t), h);
  h = fnv1a64(&k.opts.tiling.tile_height, sizeof(index_t), h);
  h = fnv1a64(&k.opts.ssf_threshold, sizeof(double), h);
  h = fnv1a64(&k.opts.profile_sample_fraction, sizeof(double), h);
  // Precision is part of the key: a bf16 plan and an f32 plan of the
  // same matrix are distinct artifacts and must never alias.
  const i64 precision = static_cast<i64>(k.opts.precision);
  h = fnv1a64(&precision, sizeof(i64), h);
  return static_cast<usize>(h);
}

PlanCache::PlanCache(i64 byte_budget, double ttl_ms)
    : budget_(byte_budget), ttl_ms_(ttl_ms) {
  NMDT_CHECK_CONFIG(byte_budget > 0, "plan cache byte budget must be positive");
  NMDT_CHECK_CONFIG(ttl_ms >= 0.0, "plan cache TTL must be >= 0 (0 disables)");
  stats_.byte_budget = budget_;
}

std::shared_ptr<const SpmmPlan> PlanCache::get_or_build(const Csr& A,
                                                        const PlanOptions& opts,
                                                        bool* was_hit) {
  static obs::Counter& hit_counter = obs::MetricsRegistry::global().counter("plan_cache.hits");
  static obs::Counter& miss_counter =
      obs::MetricsRegistry::global().counter("plan_cache.misses");
  obs::TraceSpan span("plan_cache.lookup");
  const Key key{fingerprint_of(A), opts};
  bool recovering = false;
  std::shared_ptr<InFlight> flight;
  bool builder = false;
  {
    std::unique_lock<std::mutex> lock(mu_);
    auto it = index_.find(key);
    if (it != index_.end()) {
      // Re-verify the entry against the freshly computed fingerprint on
      // every hit — a corrupted resident plan must never be served.
      // The injection layer models the entry's bytes having been
      // damaged while resident.
      const bool injected =
          fault::should_inject(fault::FaultSite::kCacheEntry, key.fp.combined());
      const bool corrupt =
          injected || !(it->second->second.plan->fingerprint() == key.fp);
      const bool expired =
          !corrupt && ttl_ms_ > 0.0 &&
          std::chrono::duration<double, std::milli>(Clock::now() -
                                                    it->second->second.built_at)
                  .count() > ttl_ms_;
      if (!corrupt && !expired) {
        lru_.splice(lru_.begin(), lru_, it->second);  // bump to most recent
        ++stats_.hits;
        hit_counter.add(1);
        if (was_hit) *was_hit = true;
        span.arg("hit", i64{1});
        return lru_.front().second.plan;
      }
      // Either way the entry is unusable: evict it and fall through to
      // the (single-flighted) rebuild path.
      stats_.bytes -= it->second->second.plan->bytes();
      lru_.erase(it->second);
      index_.erase(it);
      stats_.entries = index_.size();
      if (corrupt) {
        if (injected) fault::note_injected();
        fault::note_detected();
        recovering = true;
        ++stats_.corrupt_evictions;
        obs::MetricsRegistry::global().counter("plan_cache.corrupt_evictions").add(1);
        span.arg("corrupt_eviction", i64{1});
      } else {
        ++stats_.ttl_evictions;
        obs::MetricsRegistry::global().counter("plan_cache.ttl_evictions").add(1);
        span.arg("ttl_eviction", i64{1});
      }
    }
    if (auto fit = inflight_.find(key); fit != inflight_.end()) {
      // Another thread is already building this exact plan: join it
      // instead of building a duplicate (single-flight).
      flight = fit->second;
      ++stats_.hits;
      ++stats_.single_flight_shares;
      hit_counter.add(1);
      obs::MetricsRegistry::global().counter("plan_cache.single_flight_shares").add(1);
    } else {
      flight = std::make_shared<InFlight>();
      inflight_[key] = flight;
      builder = true;
      ++stats_.misses;
      miss_counter.add(1);
    }
  }

  if (!builder) {
    span.arg("hit", i64{1}).arg("single_flight", i64{1});
    std::unique_lock<std::mutex> wait_lock(flight->m);
    flight->cv.wait(wait_lock, [&] { return flight->done; });
    // The builder's failure is every waiter's failure: rethrow the same
    // typed error each caller would have hit building it itself.
    if (flight->error) std::rethrow_exception(flight->error);
    if (was_hit) *was_hit = true;
    return flight->plan;
  }

  span.arg("hit", i64{0});
  // Build outside the lock: planning is the expensive part, and the
  // in-flight registration above guarantees no duplicate work.
  std::shared_ptr<const SpmmPlan> plan;
  try {
    plan = build_plan(A, opts);
  } catch (...) {
    {
      std::lock_guard<std::mutex> fl(flight->m);
      flight->error = std::current_exception();
      flight->done = true;
    }
    flight->cv.notify_all();
    std::lock_guard<std::mutex> lock(mu_);
    inflight_.erase(key);
    throw;
  }
  if (recovering) fault::note_recovered();
  if (was_hit) *was_hit = false;
  {
    std::lock_guard<std::mutex> fl(flight->m);
    flight->plan = plan;
    flight->done = true;
  }
  flight->cv.notify_all();

  std::lock_guard<std::mutex> lock(mu_);
  inflight_.erase(key);
  if (plan->bytes() > budget_) {
    ++stats_.oversize;  // usable, but never resident
    obs::MetricsRegistry::global().counter("plan_cache.oversize").add(1);
    return plan;
  }
  lru_.emplace_front(key, Entry{plan, Clock::now()});
  index_[key] = lru_.begin();
  stats_.bytes += plan->bytes();
  stats_.entries = index_.size();
  evict_to_budget_locked();
  obs::MetricsRegistry::global().gauge("plan_cache.resident_bytes").set(
      static_cast<double>(stats_.bytes));
  return plan;
}

void PlanCache::evict_to_budget_locked() {
  static obs::Counter& evict_counter =
      obs::MetricsRegistry::global().counter("plan_cache.evictions");
  while (stats_.bytes > budget_ && !lru_.empty()) {
    const auto& victim = lru_.back();
    stats_.bytes -= victim.second.plan->bytes();
    index_.erase(victim.first);
    lru_.pop_back();
    ++stats_.evictions;
    evict_counter.add(1);
  }
  stats_.entries = index_.size();
}

PlanCacheStats PlanCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void PlanCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
  stats_.bytes = 0;
  stats_.entries = 0;
}

}  // namespace nmdt
