#include "core/executor.hpp"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <filesystem>
#include <map>
#include <mutex>
#include <optional>
#include <system_error>
#include <thread>
#include <type_traits>

#include "core/journal.hpp"
#include "fault/fault.hpp"
#include "formats/retype.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/scoped_timer.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace nmdt {

std::string SuiteRow::failure_summary() const {
  static constexpr std::array<const char*, kArmCount> kArmNames = {
      "baseline", "dcsr_c", "online_b", "offline_b"};
  if (!error.empty()) return "FAILED(" + error + ")";
  std::string out;
  for (int a = 0; a < kArmCount; ++a) {
    if (arm_error[static_cast<usize>(a)].empty()) continue;
    if (!out.empty()) out += "; ";
    out += std::string(kArmNames[static_cast<usize>(a)]) + ": " +
           arm_error[static_cast<usize>(a)];
  }
  return out.empty() ? std::string{} : "FAILED(" + out + ")";
}

SuiteErrorPolicy parse_error_policy(const std::string& name) {
  if (name == "fail_fast") return SuiteErrorPolicy::kFailFast;
  if (name == "continue") return SuiteErrorPolicy::kContinue;
  throw ConfigError("unknown suite error policy '" + name +
                    "' (expected fail_fast or continue)");
}

const char* error_policy_name(SuiteErrorPolicy policy) {
  return policy == SuiteErrorPolicy::kFailFast ? "fail_fast" : "continue";
}

SpmmExecutor::SpmmExecutor(SpmmConfig cfg) : cfg_(std::move(cfg)) {
  cfg_.arch.validate();
  cfg_.tiling.validate();
}

SpmmResult SpmmExecutor::execute(const SpmmPlan& plan, const DenseMatrix& B) const {
  return execute(plan.kernel(), plan, B);
}

SpmmResult SpmmExecutor::execute(KernelKind kind, const SpmmPlan& plan,
                                 const DenseMatrix& B) const {
  // A plan's tiled artifacts are only valid under the tiling they were
  // built with; a mismatch would silently fall back to in-kernel
  // conversion and defeat the amortization, so fail loudly instead.
  NMDT_CHECK_CONFIG(plan.options().tiling == cfg_.tiling,
                    "plan was built under a different TilingSpec than the executor's");
  // Same for the value precision: running an f32 plan under a bf16
  // config would silently measure the wrong value traffic.
  NMDT_CHECK_CONFIG(plan.precision() == cfg_.precision,
                    "plan was built at a different precision than the executor's");
  return dispatch_precision(plan.precision(), [&](auto tag) -> SpmmResult {
    using V = typename decltype(tag)::type;
    const SpmmOperandsT<V> ops = plan.operands_at<V>().bundle();
    if constexpr (std::is_same_v<V, value_t>) {
      return run_spmm_t<V>(kind, ops, B, cfg_);
    } else {
      // B arrives at the canonical f32 precision; retype per call (the
      // plan amortizes A's conversions, B changes every block anyway).
      const DenseMatrixT<V> b = retype<V>(B);
      return run_spmm_t<V>(kind, ops, b, cfg_);
    }
  });
}

namespace {

/// Shared per-row state for the arm fan-out.  The four arm tasks write
/// disjoint SuiteRow fields; the last one to finish reports the row.
struct RowJob {
  std::shared_ptr<const SpmmPlan> plan;
  std::shared_ptr<const DenseMatrix> B;
  std::atomic<int> arms_left{SuiteRow::kArmCount};
  /// Set when any arm of this row was abandoned by cancellation: the
  /// partial row must not be reported or counted as done work.
  std::atomic<bool> cancelled{false};
};

/// Watchdog thread for deadline enforcement.  Every few milliseconds it
/// scans the suite token and every registered in-flight arm token and
/// *requests* cancellation on any whose deadline has expired — turning
/// an implicit (clock-comparison) expiry into an explicit sticky
/// request that every subsequent cancelled()/poll() observes without
/// touching the clock.  It only ever cancels cooperatively; arms unwind
/// at their next poll, never mid-write.
class DeadlineWatchdog {
 public:
  explicit DeadlineWatchdog(CancelToken suite)
      : suite_(std::move(suite)), thread_([this] { loop(); }) {}
  ~DeadlineWatchdog() { stop(); }

  usize add(const CancelToken& token) {
    std::lock_guard<std::mutex> lock(mu_);
    arms_[next_id_] = token;
    return next_id_++;
  }
  void remove(usize id) {
    std::lock_guard<std::mutex> lock(mu_);
    arms_.erase(id);
  }
  void stop() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    if (thread_.joinable()) thread_.join();
  }

 private:
  void loop() {
    std::unique_lock<std::mutex> lock(mu_);
    while (!stop_) {
      cv_.wait_for(lock, std::chrono::milliseconds(2), [this] { return stop_; });
      if (stop_) return;
      if (suite_.cancelled()) suite_.request(suite_.reason());
      for (auto& [id, token] : arms_) {
        if (token.cancelled()) token.request(token.reason());
      }
    }
  }

  CancelToken suite_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::map<usize, CancelToken> arms_;
  usize next_id_ = 0;
  std::thread thread_;
};

}  // namespace

std::vector<SuiteRow> run_suite(std::span<const MatrixSpec> specs, const SpmmConfig& cfg,
                                index_t K, const SuiteProgress& progress, int jobs,
                                SuiteErrorPolicy policy) {
  SuiteOptions opts;
  opts.jobs = jobs;
  opts.policy = policy;
  return run_suite(specs, cfg, K, progress, opts);
}

std::vector<SuiteRow> run_suite(std::span<const MatrixSpec> specs, const SpmmConfig& cfg,
                                index_t K, const SuiteProgress& progress,
                                const SuiteOptions& opts) {
  NMDT_CHECK_CONFIG(K > 0, "run_suite requires K > 0");
  NMDT_CHECK_CONFIG(!opts.resume || !opts.journal_path.empty(),
                    "resume requires a checkpoint-journal path");
  const usize total = specs.size();
  obs::MetricsRegistry::global().counter("suite.runs").add(1);
  // Install the sweep-wide fault plan (a default plan leaves whatever is
  // already installed untouched).
  std::optional<fault::FaultScope> fault_scope;
  if (cfg.fault.site != fault::FaultSite::kNone) fault_scope.emplace(cfg.fault);
  obs::TraceSpan suite_span("suite.run");
  suite_span.arg("total", static_cast<i64>(total))
      .arg("jobs", opts.jobs)
      .arg("k", static_cast<i64>(K));

  // --- Durability setup: fingerprint, replay, journal writer. --------
  const u64 fingerprint = suite_fingerprint(specs, cfg, K, SuiteRow::kArmCount);
  JournalReplay replay;
  if (opts.resume) {
    replay = read_journal_file(opts.journal_path);
    verify_journal(replay, fingerprint, total, K, SuiteRow::kArmCount);
    obs::MetricsRegistry::global().counter("checkpoint.replayed").add(
        static_cast<i64>(replay.entries));
    suite_span.arg("replayed_entries", static_cast<i64>(replay.entries));
  }
  std::optional<JournalWriter> writer;
  if (!opts.journal_path.empty()) {
    // A resume over a journal that never got its header (empty file or
    // fully torn) restarts from a fresh header.
    const bool append = opts.resume && replay.has_header;
    if (append && replay.torn_tail) {
      // The reader dropped the torn trailing frame but its bytes are
      // still on disk; appending after them would leave the stale
      // length prefix spanning into the fresh frames, so the *next*
      // read would report a CRC mismatch on perfectly good data.
      // Truncate to the last complete frame before reopening.
      std::error_code ec;
      std::filesystem::resize_file(
          opts.journal_path, static_cast<std::uintmax_t>(replay.valid_bytes), ec);
      if (ec) {
        throw ParseError("cannot truncate torn checkpoint-journal tail: " +
                         opts.journal_path + " (" + ec.message() + ")");
      }
    }
    writer.emplace(opts.journal_path, fingerprint, total, K, SuiteRow::kArmCount,
                   opts.checkpoint_interval, append);
  }
  auto checkpoint = [&] {
    if (writer && opts.on_checkpoint) opts.on_checkpoint(writer->entries());
  };

  // --- Cancellation / deadlines. -------------------------------------
  // The suite token is a *child* of the caller's: an external request()
  // (SIGINT handler) on opts.cancel is visible to every poll below, but
  // the suite deadline armed here lives on the child only — a caller
  // that reuses its token for a second run_suite (or any other polled
  // work) never inherits a stale expired deadline.
  const CancelToken suite_token = CancelToken::child_of(opts.cancel);
  if (opts.suite_timeout_ms > 0.0) {
    suite_token.set_deadline(
        CancelToken::Clock::now() +
            std::chrono::duration_cast<CancelToken::Clock::duration>(
                std::chrono::duration<double, std::milli>(opts.suite_timeout_ms)),
        CancelReason::kSuiteDeadline);
  }
  std::optional<DeadlineWatchdog> watchdog;
  if (opts.arm_timeout_ms > 0.0 || opts.suite_timeout_ms > 0.0) {
    watchdog.emplace(suite_token);
  }

  // Typed failures are isolated per row/arm.  Under kFailFast the
  // lowest-(row, arm) failure is rethrown only after every submitted
  // task has drained — aborting early would make which siblings ran
  // depend on scheduling.
  std::mutex err_mu;
  i64 err_rank = -1;
  std::exception_ptr err;
  auto record_failure = [&](usize idx, int arm) {
    // arm -1 = row-level failure, ranked ahead of the row's arms.
    const i64 rank = static_cast<i64>(idx) * (SuiteRow::kArmCount + 1) + arm + 1;
    std::lock_guard<std::mutex> lock(err_mu);
    if (err_rank < 0 || rank < err_rank) {
      err_rank = rank;
      err = std::current_exception();
    }
  };
  // Replayed failures re-enter the same path as live ones: rebuild the
  // typed exception from its journaled description so kFailFast rethrow
  // after resume maps to the same CLI exit code as the original run.
  auto record_replayed_failure = [&](usize idx, int arm, const std::string& desc) {
    try {
      std::rethrow_exception(exception_from_description(desc));
    } catch (...) {
      record_failure(idx, arm);
    }
  };

  // Suite tasks run on pool threads whose thread-local track is unset;
  // derive every row/arm track from the *caller's* track so the merged
  // trace is independent of worker scheduling.
  const u64 suite_track = obs::TraceTrack::current();
  std::vector<std::optional<SuiteRow>> slots(total);

  // --- Replay prefill: rows the journal already finished. ------------
  // Complete rows are materialized straight from the journal (their
  // values are the original runs' exact bit patterns) and reported to
  // progress, in index order, before any live work starts.  Partial
  // rows keep a pointer so the live task can skip replayed arms.
  std::vector<const JournalRow*> partial(total, nullptr);
  usize prefilled_reported = 0;
  usize prefilled_finished = 0;  // includes degenerate (unreported) rows
  auto apply_replayed_arm = [](SuiteRow& row, int arm, const JournalArmOutcome& out) {
    switch (arm) {
      case SuiteRow::kArmBaseline: row.t_baseline_ms = out.t_ms; break;
      case SuiteRow::kArmDcsrC: row.t_dcsr_c_ms = out.t_ms; break;
      case SuiteRow::kArmOnlineB: row.t_online_b_ms = out.t_ms; break;
      case SuiteRow::kArmOfflineB:
        row.t_offline_b_ms = out.t_ms;
        row.offline_prep_ms = out.prep_ms;
        break;
      default: break;
    }
  };
  for (usize idx = 0; idx < total; ++idx) {
    const auto it = replay.rows.find(idx);
    if (it == replay.rows.end()) continue;
    const JournalRow& jr = it->second;
    if (!jr.complete(SuiteRow::kArmCount)) {
      partial[idx] = &jr;
      continue;
    }
    ++prefilled_finished;
    if (jr.degenerate) continue;  // degenerate rows are never reported
    SuiteRow row;
    row.spec = specs[idx];
    if (jr.error.has_value()) {
      row.error = *jr.error;
      record_replayed_failure(idx, -1, row.error);
    } else {
      row.profile = jr.profile;
      for (int a = 0; a < SuiteRow::kArmCount; ++a) {
        const JournalArmOutcome& out = *jr.arms[static_cast<usize>(a)];
        if (out.failed()) {
          row.arm_error[static_cast<usize>(a)] = out.error;
          record_replayed_failure(idx, a, out.error);
          if (out.error.rfind("TimeoutError", 0) == 0) {
            obs::MetricsRegistry::global().counter("fault.timeout").add(1);
          }
        } else {
          apply_replayed_arm(row, a, out);
        }
      }
    }
    slots[idx] = std::move(row);
    if (progress) progress(++prefilled_reported, total, *slots[idx]);
    else ++prefilled_reported;
  }

  const usize total_live = total - prefilled_finished;
  std::mutex mu;
  std::condition_variable cv;
  std::deque<usize> ready;  // completed non-degenerate rows, completion order
  usize finished = 0;       // completed live specs, including degenerate draws

  {
    ThreadPool pool(opts.jobs);
    auto row_done = [&](usize idx, bool has_row) {
      {
        std::lock_guard<std::mutex> lock(mu);
        ++finished;
        if (has_row) ready.push_back(idx);
      }
      cv.notify_one();
    };

    for (usize idx = 0; idx < total; ++idx) {
      if (slots[idx].has_value() ||
          (replay.rows.count(idx) != 0 &&
           replay.rows.at(idx).complete(SuiteRow::kArmCount))) {
        continue;  // fully replayed above
      }
      pool.submit([&, idx] {
        obs::TraceTrack track(suite_track, "suite_row", static_cast<u64>(idx));
        // Planning polls inside the conversion engine's tile loops, so
        // a cancelled sweep unwinds even mid-plan.
        CancelScope cancel_scope(suite_token);
        const JournalRow* jrow = partial[idx];
        SuiteRow row;
        row.spec = specs[idx];
        auto job = std::make_shared<RowJob>();
        try {
          poll_cancellation();
          const Csr A = specs[idx].generate();
          if (A.nnz() == 0) {  // degenerate draw: nothing to measure
            if (writer && !(jrow && jrow->degenerate)) {
              writer->row_degenerate(idx);
              checkpoint();
            }
            row_done(idx, false);
            return;
          }
          // Plan once per matrix: profile + all conversions; the four
          // arms below share the converted artifacts.  Partially
          // replayed rows re-plan too — the plan is a pure function of
          // (spec, cfg) and its artifacts are needed by the remaining
          // arms — but skip re-journaling.
          {
            obs::TraceSpan sp("suite.plan");
            obs::ScopedTimer t("suite.plan_ms");
            job->plan = build_plan(
                A, {cfg.tiling, default_ssf_threshold(), 1.0, cfg.precision});
            sp.arg("matrix", specs[idx].name.c_str())
                .arg("nnz", static_cast<i64>(A.nnz()));
          }
          // Per-task seeding: B depends only on the row index, so results
          // are identical at any thread count.
          Rng b_rng(0xb0b0 + static_cast<u64>(idx));
          auto B = std::make_shared<DenseMatrix>(A.cols, K);
          B->randomize(b_rng);
          job->B = std::move(B);
          row.profile = job->plan->profile();
          if (writer && !(jrow && jrow->planned)) {
            writer->row_planned(idx, row.profile);
            checkpoint();
          }
        } catch (const CancelledError&) {
          // Abandoned row: nothing journaled, nothing reported — the
          // resumed sweep re-runs it from scratch, bit-identically.
          row_done(idx, false);
          return;
        } catch (...) {
          // Row-level failure (generation or planning): record the typed
          // error and report the row; no arms run for it.
          row.error = describe_current_exception();
          if (writer) {
            writer->row_error(idx, row.error);
            checkpoint();
          }
          slots[idx] = std::move(row);
          record_failure(idx, -1);
          row_done(idx, true);
          return;
        }
        // Fold replayed arm outcomes in before publishing the slot; the
        // remaining arms are the only live tasks.
        int missing = 0;
        for (int a = 0; a < SuiteRow::kArmCount; ++a) {
          const auto& rep =
              jrow ? jrow->arms[static_cast<usize>(a)] : std::optional<JournalArmOutcome>{};
          if (!rep.has_value()) {
            ++missing;
            continue;
          }
          if (rep->failed()) {
            row.arm_error[static_cast<usize>(a)] = rep->error;
            record_replayed_failure(idx, a, rep->error);
          } else {
            apply_replayed_arm(row, a, *rep);
          }
        }
        job->arms_left.store(missing, std::memory_order_relaxed);
        slots[idx] = std::move(row);
        if (missing == 0) {
          // Only reachable via a CRC-valid journal the writer never
          // produces (all arm outcomes but no row_planned entry, e.g.
          // crafted bytes): with no live arms, no submit_arm callback
          // would ever fire row_done and the suite would wait forever.
          row_done(idx, true);
          return;
        }

        // Modelled timing depends only on matrix structure (never on
        // B's values), so the arms are independent deterministic tasks.
        auto submit_arm = [&, idx, job, jrow](int arm, KernelKind kind, auto&& commit) {
          if (jrow && jrow->arms[static_cast<usize>(arm)].has_value()) return;
          pool.submit([&, idx, job, arm, kind, commit] {
            // Each arm gets its own child token so a per-arm deadline
            // never leaks into siblings; the watchdog sees it for the
            // duration of the arm only.
            const CancelToken arm_token = CancelToken::child_of(suite_token);
            if (opts.arm_timeout_ms > 0.0) {
              arm_token.set_deadline(
                  CancelToken::Clock::now() +
                      std::chrono::duration_cast<CancelToken::Clock::duration>(
                          std::chrono::duration<double, std::milli>(
                              opts.arm_timeout_ms)),
                  CancelReason::kDeadline);
            }
            std::optional<usize> watch_id;
            if (watchdog) watch_id = watchdog->add(arm_token);
            CancelScope arm_scope(arm_token);
            // One span per matrix × kernel arm, on a track keyed by
            // (kernel, row) so arms never share a lane.
            obs::TraceTrack arm_track(suite_track, kernel_name(kind),
                                      static_cast<u64>(idx));
            obs::TraceSpan sp("suite.arm");
            obs::ProfScope prof(sp);  // hw.* args when profiling is enabled
            try {
              arm_token.poll();
              fault::transient_point(
                  fault::FaultSite::kSuiteArm,
                  fault::mix(static_cast<u64>(idx), static_cast<u64>(arm)));
              const SpmmResult res =
                  dispatch_precision(cfg.precision, [&](auto tag) -> SpmmResult {
                    using V = typename decltype(tag)::type;
                    const SpmmOperandsT<V> ops = job->plan->operands_at<V>().bundle();
                    if constexpr (std::is_same_v<V, value_t>) {
                      return run_spmm_t<V>(kind, ops, *job->B, cfg);
                    } else {
                      const DenseMatrixT<V> b = retype<V>(*job->B);
                      return run_spmm_t<V>(kind, ops, b, cfg);
                    }
                  });
              sp.arg("matrix", specs[idx].name.c_str())
                  .arg("kernel", kernel_name(kind))
                  .arg("jobs", cfg.jobs)
                  .arg("modelled_ms", res.timing.total_ms());
              commit(*slots[idx], res);
              if (writer) {
                const double prep = arm == SuiteRow::kArmOfflineB
                                        ? res.offline_prep_ns * 1e-6
                                        : 0.0;
                writer->arm_done(idx, arm, res.timing.total_ms(), prep);
                checkpoint();
              }
            } catch (const CancelledError&) {
              // Abandoned, not failed: leave the journal and the error
              // table untouched so resume re-executes this arm.
              job->cancelled.store(true, std::memory_order_relaxed);
              sp.arg("matrix", specs[idx].name.c_str())
                  .arg("kernel", kernel_name(kind))
                  .arg("cancelled", i64{1});
            } catch (...) {
              std::string& slot = slots[idx]->arm_error[static_cast<usize>(arm)];
              slot = describe_current_exception();
              if (slot.rfind("TimeoutError", 0) == 0) {
                obs::MetricsRegistry::global().counter("fault.timeout").add(1);
              }
              sp.arg("matrix", specs[idx].name.c_str())
                  .arg("kernel", kernel_name(kind))
                  .arg("error", slot.c_str());
              if (writer) {
                writer->arm_error(idx, arm, slot);
                checkpoint();
              }
              record_failure(idx, arm);
            }
            if (watchdog && watch_id.has_value()) watchdog->remove(*watch_id);
            if (job->arms_left.fetch_sub(1, std::memory_order_acq_rel) == 1) {
              row_done(idx, !job->cancelled.load(std::memory_order_relaxed));
            }
          });
        };
        submit_arm(SuiteRow::kArmBaseline, KernelKind::kCsrCStationaryRowWarp,
                   [](SuiteRow& r, const SpmmResult& res) {
                     r.t_baseline_ms = res.timing.total_ms();
                   });
        submit_arm(SuiteRow::kArmDcsrC, KernelKind::kDcsrCStationary,
                   [](SuiteRow& r, const SpmmResult& res) {
                     r.t_dcsr_c_ms = res.timing.total_ms();
                   });
        submit_arm(SuiteRow::kArmOnlineB, KernelKind::kTiledDcsrOnline,
                   [](SuiteRow& r, const SpmmResult& res) {
                     r.t_online_b_ms = res.timing.total_ms();
                   });
        submit_arm(SuiteRow::kArmOfflineB, KernelKind::kTiledDcsrBStationary,
                   [](SuiteRow& r, const SpmmResult& res) {
                     r.t_offline_b_ms = res.timing.total_ms();
                     r.offline_prep_ms = res.offline_prep_ns * 1e-6;
                   });
      });
    }

    // Single-threaded progress reporting from the calling thread, in
    // completion order, with monotonically increasing `done`.
    usize reported = prefilled_reported;
    std::unique_lock<std::mutex> lock(mu);
    while (finished < total_live || !ready.empty()) {
      cv.wait(lock, [&] { return !ready.empty() || finished == total_live; });
      while (!ready.empty()) {
        const usize idx = ready.front();
        ready.pop_front();
        if (progress) {
          lock.unlock();
          progress(++reported, total, *slots[idx]);
          lock.lock();
        } else {
          ++reported;
        }
      }
    }
  }  // pool joins here; all tasks complete

  if (watchdog) watchdog->stop();
  if (writer) writer->flush();  // final checkpoint lands before we report

  if (suite_token.cancelled()) {
    obs::MetricsRegistry::global().counter("suite.cancelled").add(1);
    const std::string where =
        opts.journal_path.empty()
            ? std::string(" (no journal was configured; completed work is lost)")
            : " (completed work is checkpointed in " + opts.journal_path + ")";
    if (suite_token.reason() == CancelReason::kSuiteDeadline) {
      throw TimeoutError("suite sweep exceeded its deadline" + where);
    }
    throw CancelledError("suite sweep cancelled" + where);
  }

  if (opts.policy == SuiteErrorPolicy::kFailFast && err) std::rethrow_exception(err);

  std::vector<SuiteRow> rows;
  rows.reserve(total);
  for (auto& slot : slots) {
    if (slot.has_value()) rows.push_back(std::move(*slot));
  }
  return rows;
}

SsfThreshold train_threshold(std::span<const SuiteRow> rows) {
  std::vector<SsfSample> samples;
  samples.reserve(rows.size());
  for (const auto& r : rows) {
    samples.push_back({r.profile.ssf, r.ratio_c_over_b()});
  }
  return learn_ssf_threshold(samples);
}

}  // namespace nmdt
