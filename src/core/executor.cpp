#include "core/executor.hpp"

#include <atomic>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

#include "fault/fault.hpp"
#include "obs/metrics.hpp"
#include "obs/scoped_timer.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace nmdt {

std::string SuiteRow::failure_summary() const {
  static constexpr std::array<const char*, kArmCount> kArmNames = {
      "baseline", "dcsr_c", "online_b", "offline_b"};
  if (!error.empty()) return "FAILED(" + error + ")";
  std::string out;
  for (int a = 0; a < kArmCount; ++a) {
    if (arm_error[static_cast<usize>(a)].empty()) continue;
    if (!out.empty()) out += "; ";
    out += std::string(kArmNames[static_cast<usize>(a)]) + ": " +
           arm_error[static_cast<usize>(a)];
  }
  return out.empty() ? std::string{} : "FAILED(" + out + ")";
}

SuiteErrorPolicy parse_error_policy(const std::string& name) {
  if (name == "fail_fast") return SuiteErrorPolicy::kFailFast;
  if (name == "continue") return SuiteErrorPolicy::kContinue;
  throw ConfigError("unknown suite error policy '" + name +
                    "' (expected fail_fast or continue)");
}

const char* error_policy_name(SuiteErrorPolicy policy) {
  return policy == SuiteErrorPolicy::kFailFast ? "fail_fast" : "continue";
}

SpmmExecutor::SpmmExecutor(SpmmConfig cfg) : cfg_(std::move(cfg)) {
  cfg_.arch.validate();
  cfg_.tiling.validate();
}

SpmmResult SpmmExecutor::execute(const SpmmPlan& plan, const DenseMatrix& B) const {
  return execute(plan.kernel(), plan, B);
}

SpmmResult SpmmExecutor::execute(KernelKind kind, const SpmmPlan& plan,
                                 const DenseMatrix& B) const {
  // A plan's tiled artifacts are only valid under the tiling they were
  // built with; a mismatch would silently fall back to in-kernel
  // conversion and defeat the amortization, so fail loudly instead.
  NMDT_CHECK_CONFIG(plan.options().tiling == cfg_.tiling,
                    "plan was built under a different TilingSpec than the executor's");
  return run_spmm(kind, plan.operands(), B, cfg_);
}

namespace {

/// Shared per-row state for the arm fan-out.  The four arm tasks write
/// disjoint SuiteRow fields; the last one to finish reports the row.
struct RowJob {
  std::shared_ptr<const SpmmPlan> plan;
  std::shared_ptr<const DenseMatrix> B;
  std::atomic<int> arms_left{4};
};

}  // namespace

std::vector<SuiteRow> run_suite(std::span<const MatrixSpec> specs, const SpmmConfig& cfg,
                                index_t K, const SuiteProgress& progress, int jobs,
                                SuiteErrorPolicy policy) {
  NMDT_CHECK_CONFIG(K > 0, "run_suite requires K > 0");
  const usize total = specs.size();
  obs::MetricsRegistry::global().counter("suite.runs").add(1);
  // Install the sweep-wide fault plan (a default plan leaves whatever is
  // already installed untouched).
  std::optional<fault::FaultScope> fault_scope;
  if (cfg.fault.site != fault::FaultSite::kNone) fault_scope.emplace(cfg.fault);
  obs::TraceSpan suite_span("suite.run");
  suite_span.arg("total", static_cast<i64>(total))
      .arg("jobs", jobs)
      .arg("k", static_cast<i64>(K));

  // Typed failures are isolated per row/arm.  Under kFailFast the
  // lowest-(row, arm) failure is rethrown only after every submitted
  // task has drained — aborting early would make which siblings ran
  // depend on scheduling.
  std::mutex err_mu;
  i64 err_rank = -1;
  std::exception_ptr err;
  auto record_failure = [&](usize idx, int arm) {
    // arm -1 = row-level failure, ranked ahead of the row's arms.
    const i64 rank = static_cast<i64>(idx) * (SuiteRow::kArmCount + 1) + arm + 1;
    std::lock_guard<std::mutex> lock(err_mu);
    if (err_rank < 0 || rank < err_rank) {
      err_rank = rank;
      err = std::current_exception();
    }
  };
  // Suite tasks run on pool threads whose thread-local track is unset;
  // derive every row/arm track from the *caller's* track so the merged
  // trace is independent of worker scheduling.
  const u64 suite_track = obs::TraceTrack::current();
  std::vector<std::optional<SuiteRow>> slots(total);

  std::mutex mu;
  std::condition_variable cv;
  std::deque<usize> ready;  // completed non-degenerate rows, completion order
  usize finished = 0;       // completed specs, including degenerate draws

  {
    ThreadPool pool(jobs);
    auto row_done = [&](usize idx, bool has_row) {
      {
        std::lock_guard<std::mutex> lock(mu);
        ++finished;
        if (has_row) ready.push_back(idx);
      }
      cv.notify_one();
    };

    for (usize idx = 0; idx < total; ++idx) {
      pool.submit([&, idx] {
        obs::TraceTrack track(suite_track, "suite_row", static_cast<u64>(idx));
        SuiteRow row;
        row.spec = specs[idx];
        auto job = std::make_shared<RowJob>();
        try {
          const Csr A = specs[idx].generate();
          if (A.nnz() == 0) {  // degenerate draw: nothing to measure
            row_done(idx, false);
            return;
          }
          // Plan once per matrix: profile + all conversions; the four
          // arms below share the converted artifacts.
          {
            obs::TraceSpan sp("suite.plan");
            obs::ScopedTimer t("suite.plan_ms");
            job->plan = build_plan(A, {cfg.tiling, default_ssf_threshold(), 1.0});
            sp.arg("matrix", specs[idx].name.c_str())
                .arg("nnz", static_cast<i64>(A.nnz()));
          }
          // Per-task seeding: B depends only on the row index, so results
          // are identical at any thread count.
          Rng b_rng(0xb0b0 + static_cast<u64>(idx));
          auto B = std::make_shared<DenseMatrix>(A.cols, K);
          B->randomize(b_rng);
          job->B = std::move(B);
          row.profile = job->plan->profile();
        } catch (...) {
          // Row-level failure (generation or planning): record the typed
          // error and report the row; no arms run for it.
          row.error = describe_current_exception();
          slots[idx] = std::move(row);
          record_failure(idx, -1);
          row_done(idx, true);
          return;
        }
        slots[idx] = std::move(row);

        // Modelled timing depends only on matrix structure (never on
        // B's values), so the arms are independent deterministic tasks.
        auto submit_arm = [&, idx, job](int arm, KernelKind kind, auto&& commit) {
          pool.submit([&, idx, job, arm, kind, commit] {
            // One span per matrix × kernel arm, on a track keyed by
            // (kernel, row) so arms never share a lane.
            obs::TraceTrack arm_track(suite_track, kernel_name(kind),
                                      static_cast<u64>(idx));
            obs::TraceSpan sp("suite.arm");
            try {
              fault::transient_point(
                  fault::FaultSite::kSuiteArm,
                  fault::mix(static_cast<u64>(idx), static_cast<u64>(arm)));
              const SpmmResult res = run_spmm(kind, job->plan->operands(), *job->B, cfg);
              sp.arg("matrix", specs[idx].name.c_str())
                  .arg("kernel", kernel_name(kind))
                  .arg("jobs", cfg.jobs)
                  .arg("modelled_ms", res.timing.total_ms());
              commit(*slots[idx], res);
            } catch (...) {
              std::string& slot = slots[idx]->arm_error[static_cast<usize>(arm)];
              slot = describe_current_exception();
              sp.arg("matrix", specs[idx].name.c_str())
                  .arg("kernel", kernel_name(kind))
                  .arg("error", slot.c_str());
              record_failure(idx, arm);
            }
            if (job->arms_left.fetch_sub(1, std::memory_order_acq_rel) == 1) {
              row_done(idx, true);
            }
          });
        };
        submit_arm(SuiteRow::kArmBaseline, KernelKind::kCsrCStationaryRowWarp,
                   [](SuiteRow& r, const SpmmResult& res) {
                     r.t_baseline_ms = res.timing.total_ms();
                   });
        submit_arm(SuiteRow::kArmDcsrC, KernelKind::kDcsrCStationary,
                   [](SuiteRow& r, const SpmmResult& res) {
                     r.t_dcsr_c_ms = res.timing.total_ms();
                   });
        submit_arm(SuiteRow::kArmOnlineB, KernelKind::kTiledDcsrOnline,
                   [](SuiteRow& r, const SpmmResult& res) {
                     r.t_online_b_ms = res.timing.total_ms();
                   });
        submit_arm(SuiteRow::kArmOfflineB, KernelKind::kTiledDcsrBStationary,
                   [](SuiteRow& r, const SpmmResult& res) {
                     r.t_offline_b_ms = res.timing.total_ms();
                     r.offline_prep_ms = res.offline_prep_ns * 1e-6;
                   });
      });
    }

    // Single-threaded progress reporting from the calling thread, in
    // completion order, with monotonically increasing `done`.
    usize reported = 0;
    std::unique_lock<std::mutex> lock(mu);
    while (finished < total || !ready.empty()) {
      cv.wait(lock, [&] { return !ready.empty() || finished == total; });
      while (!ready.empty()) {
        const usize idx = ready.front();
        ready.pop_front();
        if (progress) {
          lock.unlock();
          progress(++reported, total, *slots[idx]);
          lock.lock();
        } else {
          ++reported;
        }
      }
    }
  }  // pool joins here; all tasks complete

  if (policy == SuiteErrorPolicy::kFailFast && err) std::rethrow_exception(err);

  std::vector<SuiteRow> rows;
  rows.reserve(total);
  for (auto& slot : slots) {
    if (slot.has_value()) rows.push_back(std::move(*slot));
  }
  return rows;
}

SsfThreshold train_threshold(std::span<const SuiteRow> rows) {
  std::vector<SsfSample> samples;
  samples.reserve(rows.size());
  for (const auto& r : rows) {
    samples.push_back({r.profile.ssf, r.ratio_c_over_b()});
  }
  return learn_ssf_threshold(samples);
}

}  // namespace nmdt
