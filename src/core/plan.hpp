// Plan stage of the Plan → Cache → Execute pipeline.
//
// The paper's workloads re-run SpMM against many dense vector blocks
// (iterative eigensolvers, GNN layers — Sec. 2) while the sparse operand
// A stays fixed.  Everything derivable from A alone — the profile
// (Eq. 1/2), the SSF strategy decision, the chosen kernel, and the
// pre-converted operand formats (CSC, DCSR, tiled DCSR, tiled CSR) — is
// therefore captured once into an immutable SpmmPlan and reused across
// calls, the amortized-preprocessing argument of Hong et al. and
// Yang/Buluç/Owens applied to this codebase.
//
// A PlanCache keyed by a cheap matrix fingerprint (dims, nnz, hashes of
// row_ptr/col_idx/val — formats/fingerprint.hpp) with LRU eviction under
// a byte budget makes the reuse automatic: repeated SpmmEngine::run
// calls against the same A skip profiling and conversion entirely.
#pragma once

#include <chrono>
#include <condition_variable>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <variant>

#include "analysis/heuristic.hpp"
#include "analysis/profile.hpp"
#include "formats/fingerprint.hpp"
#include "kernels/spmm.hpp"
#include "util/error.hpp"

namespace nmdt {

/// SSF decision threshold learned on the medium standard suite under
/// evaluation_config() (bench/fig04_ssf_heuristic re-derives and prints
/// the trained value; EXPERIMENTS.md records the training accuracy).
double default_ssf_threshold();

/// Everything that changes what a plan contains.  Two calls with equal
/// PlanOptions and equal matrices share one cache entry.
struct PlanOptions {
  TilingSpec tiling{64, 64};
  double ssf_threshold = default_ssf_threshold();
  /// Row fraction used to profile A; < 1 uses sampled SSF estimation
  /// (analysis/sampling.hpp).
  double profile_sample_fraction = 1.0;
  /// Stored value precision of the plan's converted operand formats.
  /// Plans at different precisions are distinct cache entries — the
  /// fingerprint covers the canonical f32 input, so the precision must
  /// participate in the key or a bf16 plan would alias an f32 one.
  Precision precision = Precision::kF32;

  bool operator==(const PlanOptions&) const = default;
};

/// The converted operand formats of one plan, stored at precision V.
/// Structural layouts are precision-independent; only the value arrays
/// (and hence bytes()) change width.
template <class V>
struct PlanOperandsT {
  CsrT<V> csr;
  CscT<V> csc;
  DcsrT<V> dcsr;
  TiledDcsrT<V> tiled_dcsr;
  TiledCsrT<V> tiled_csr;
  StripNnz strip_nnz;

  /// Non-owning kernel bundle over these formats (the PlanOperandsT
  /// must outlive any kernel call using it).
  SpmmOperandsT<V> bundle() const;
  /// Resident bytes of all artifacts (the cache budget unit).
  i64 bytes() const;
};

/// Immutable result of planning: the profile, the strategy decision, and
/// every operand format the kernels can consume, converted once.
class SpmmPlan {
 public:
  /// Profile A and convert all operand formats.  `A` is the canonical
  /// f32 matrix (the provenance rule of formats/retype.hpp): the
  /// fingerprint and the profile are computed from it, then the value
  /// arrays are retyped once to opts.precision and every operand format
  /// is derived at that precision.  `A` is copied into the plan so the
  /// plan can outlive the caller's matrix (cache residency).
  SpmmPlan(const Csr& A, const PlanOptions& opts);

  const PlanOptions& options() const { return options_; }
  Precision precision() const { return options_.precision; }
  const MatrixFingerprint& fingerprint() const { return fingerprint_; }
  const MatrixProfile& profile() const { return profile_; }
  Strategy strategy() const { return strategy_; }
  KernelKind kernel() const { return kernel_; }

  /// Typed operand set at precision V; ConfigError if V is not the
  /// plan's precision.
  template <class V>
  const PlanOperandsT<V>& operands_at() const;

  // f32 accessors (ConfigError when the plan holds another precision —
  // the overwhelmingly common canonical case keeps its terse spelling).
  const Csr& csr() const { return operands_at<value_t>().csr; }
  const Csc& csc() const { return operands_at<value_t>().csc; }
  const Dcsr& dcsr() const { return operands_at<value_t>().dcsr; }
  const TiledDcsr& tiled_dcsr() const { return operands_at<value_t>().tiled_dcsr; }
  const TiledCsr& tiled_csr() const { return operands_at<value_t>().tiled_csr; }
  const StripNnz& strip_nnz() const { return operands_at<value_t>().strip_nnz; }

  /// Non-owning operand bundle over this plan's converted formats (f32
  /// plans only; use operands_at<V>().bundle() for other precisions).
  /// The plan must outlive any kernel call using the bundle.
  SpmmOperands operands() const { return operands_at<value_t>().bundle(); }

  /// Resident bytes of all converted artifacts (the cache budget unit).
  i64 bytes() const { return bytes_; }

  /// Host wall-clock spent building this plan (profiling + conversions).
  double build_ms() const { return build_ms_; }

 private:
  PlanOptions options_;
  MatrixFingerprint fingerprint_;
  MatrixProfile profile_;
  Strategy strategy_ = Strategy::kCStationary;
  KernelKind kernel_ = KernelKind::kDcsrCStationary;
  std::variant<PlanOperandsT<float>, PlanOperandsT<double>, PlanOperandsT<bf16_t>> ops_;
  i64 bytes_ = 0;
  double build_ms_ = 0.0;
};

template <class V>
const PlanOperandsT<V>& SpmmPlan::operands_at() const {
  const auto* ops = std::get_if<PlanOperandsT<V>>(&ops_);
  NMDT_CHECK_CONFIG(ops != nullptr,
                    std::string("plan operands requested at precision ") +
                        precision_name(VTraits<V>::kPrecision) + " but plan was built at " +
                        precision_name(precision()));
  return *ops;
}

/// One-shot planning without a cache.
std::shared_ptr<const SpmmPlan> build_plan(const Csr& A, const PlanOptions& opts = {});

struct PlanCacheStats {
  u64 hits = 0;
  u64 misses = 0;      ///< lookups that had to build a plan
  u64 evictions = 0;   ///< entries dropped by the LRU byte budget
  u64 oversize = 0;    ///< plans larger than the whole budget (built, not stored)
  /// Entries whose fingerprint re-verification failed on lookup (real or
  /// injected corruption); each was evicted and rebuilt as a miss.
  u64 corrupt_evictions = 0;
  /// Entries past the TTL at lookup time; each was evicted and rebuilt
  /// as a miss (0 forever when the cache has no TTL).
  u64 ttl_evictions = 0;
  /// Lookups that joined another thread's in-flight build of the same
  /// key instead of building a duplicate (single-flight).  Counted in
  /// `hits` too — the share got a plan without paying for one — so the
  /// conservation invariant stays hits + misses == completed lookups
  /// and misses == plan builds started.
  u64 single_flight_shares = 0;
  i64 bytes = 0;       ///< current resident artifact bytes
  i64 byte_budget = 0;
  usize entries = 0;
};

/// Thread-safe LRU plan cache with a byte budget — the shared service
/// tier of the Plan → Cache → Execute pipeline, shareable between an
/// engine, the suite runner's workers, and the request daemon.
///
/// Concurrency hardening for the service tier:
///   * single-flight builds: N concurrent get_or_build calls for one
///     (fingerprint, options) key build the plan exactly once; the
///     N − 1 latecomers block on the builder and share its result (or
///     rethrow its typed failure).
///   * TTL: entries older than `ttl_ms` at lookup are evicted and
///     rebuilt, bounding how long a long-lived daemon serves a plan
///     whose backing file may have changed on disk.  0 disables.
///   * corrupt-entry evict-and-rebuild (fingerprint re-verification on
///     every hit) is preserved under contention: the rebuild after a
///     corrupt eviction is itself single-flighted.
class PlanCache {
 public:
  static constexpr i64 kDefaultByteBudget = i64{512} << 20;  // 512 MiB

  explicit PlanCache(i64 byte_budget = kDefaultByteBudget, double ttl_ms = 0.0);

  /// Return the cached plan for (A, opts), building and inserting it on
  /// a miss.  `was_hit` (optional) reports which path was taken
  /// (single-flight shares report as hits).
  std::shared_ptr<const SpmmPlan> get_or_build(const Csr& A, const PlanOptions& opts,
                                               bool* was_hit = nullptr);

  PlanCacheStats stats() const;
  void clear();

 private:
  using Clock = std::chrono::steady_clock;

  struct Key {
    MatrixFingerprint fp;
    PlanOptions opts;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    usize operator()(const Key& k) const;
  };
  struct Entry {
    std::shared_ptr<const SpmmPlan> plan;
    Clock::time_point built_at;
  };
  /// Rendezvous for one in-flight build: the builder publishes the plan
  /// (or its exception) and notifies; latecomers wait on `cv`.
  struct InFlight {
    std::mutex m;
    std::condition_variable cv;
    bool done = false;
    std::shared_ptr<const SpmmPlan> plan;
    std::exception_ptr error;
  };
  using LruList = std::list<std::pair<Key, Entry>>;

  void evict_to_budget_locked();

  mutable std::mutex mu_;
  i64 budget_;
  double ttl_ms_;
  LruList lru_;  ///< front = most recently used
  std::unordered_map<Key, LruList::iterator, KeyHash> index_;
  std::unordered_map<Key, std::shared_ptr<InFlight>, KeyHash> inflight_;
  PlanCacheStats stats_;
};

}  // namespace nmdt
