// Execute stage of the Plan → Cache → Execute pipeline.
//
// An SpmmExecutor runs a previously built SpmmPlan against any
// conforming dense B (B.rows == A.cols): the kernels consume the plan's
// pre-converted operand formats, so no profiling or conversion happens
// on the execution path.
//
// run_suite — the Fig. 4 / Fig. 16 sweep — lives here too: each suite
// matrix is planned once and its four kernel arms execute against the
// shared plan, with per-matrix rows AND per-kernel arms fanned out
// across one shared ThreadPool.  Results are bit-identical at any job
// count: every task is a deterministic function of (spec, cfg, K, row
// index) — matrix generation and the B block use per-task RNG seeding —
// and rows are assembled in spec order.  The SuiteProgress callback is
// always invoked from the calling thread with monotonically increasing
// `done`, regardless of worker completion order.
#pragma once

#include <functional>

#include "core/plan.hpp"
#include "matgen/suite.hpp"

namespace nmdt {

class SpmmExecutor {
 public:
  explicit SpmmExecutor(SpmmConfig cfg);

  const SpmmConfig& config() const { return cfg_; }

  /// Run the plan's chosen kernel against B.
  SpmmResult execute(const SpmmPlan& plan, const DenseMatrix& B) const;

  /// Run a specific kernel against B using the plan's operands
  /// (bypasses the plan's heuristic decision).
  SpmmResult execute(KernelKind kind, const SpmmPlan& plan, const DenseMatrix& B) const;

 private:
  SpmmConfig cfg_;
};

/// One row of a suite sweep: everything Fig. 4 / Fig. 16 plot per
/// matrix.
struct SuiteRow {
  MatrixSpec spec;
  MatrixProfile profile;
  double t_baseline_ms = 0.0;      ///< CSR C-stationary row-per-warp
  double t_dcsr_c_ms = 0.0;        ///< untiled DCSR C-stationary
  double t_online_b_ms = 0.0;      ///< online tiled DCSR B-stationary
  double t_offline_b_ms = 0.0;     ///< offline tiled DCSR B-stationary
  double offline_prep_ms = 0.0;    ///< tiling preprocessing cost

  double ratio_c_over_b() const { return t_dcsr_c_ms / t_online_b_ms; }
  double speedup_c_arm() const { return t_baseline_ms / t_dcsr_c_ms; }
  double speedup_online_b_arm() const { return t_baseline_ms / t_online_b_ms; }
  double speedup_offline_b_arm() const { return t_baseline_ms / t_offline_b_ms; }
};

/// Called once per completed (non-degenerate) matrix, from the thread
/// that called run_suite, with `done` strictly increasing from 1.
using SuiteProgress = std::function<void(usize done, usize total, const SuiteRow&)>;

/// Run the four Fig. 16 kernels over a suite with dense B of K columns.
/// `jobs` sizes the shared thread pool; <= 0 uses
/// std::thread::hardware_concurrency().  Rows are bit-identical across
/// job counts.
std::vector<SuiteRow> run_suite(std::span<const MatrixSpec> specs, const SpmmConfig& cfg,
                                index_t K, const SuiteProgress& progress = {},
                                int jobs = 0);

/// Derive the SSF threshold from completed suite rows (the Fig. 4
/// training pass).
SsfThreshold train_threshold(std::span<const SuiteRow> rows);

}  // namespace nmdt
