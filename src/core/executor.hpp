// Execute stage of the Plan → Cache → Execute pipeline.
//
// An SpmmExecutor runs a previously built SpmmPlan against any
// conforming dense B (B.rows == A.cols): the kernels consume the plan's
// pre-converted operand formats, so no profiling or conversion happens
// on the execution path.
//
// run_suite — the Fig. 4 / Fig. 16 sweep — lives here too: each suite
// matrix is planned once and its four kernel arms execute against the
// shared plan, with per-matrix rows AND per-kernel arms fanned out
// across one shared ThreadPool.  Results are bit-identical at any job
// count: every task is a deterministic function of (spec, cfg, K, row
// index) — matrix generation and the B block use per-task RNG seeding —
// and rows are assembled in spec order.  The SuiteProgress callback is
// always invoked from the calling thread with monotonically increasing
// `done`, regardless of worker completion order.
//
// Durable execution (SuiteOptions): a sweep can journal every completed
// unit of work to a checkpoint file (core/journal.hpp), honor
// cooperative cancellation (SIGINT via a shared CancelToken), and
// enforce per-arm / whole-sweep deadlines.  The contract all three
// share: interrupt at ANY point + resume from the journal is
// bit-identical to an uninterrupted run.  Cancelled arms are therefore
// *abandoned* — not journaled, not recorded as errors — so the resumed
// sweep re-executes them from scratch, while timed-out arms are *typed
// failures* (TimeoutError) that land in the journal and the suite table
// like any other arm error.
#pragma once

#include <array>
#include <functional>
#include <string>

#include "core/plan.hpp"
#include "matgen/suite.hpp"
#include "util/cancel.hpp"

namespace nmdt {

class SpmmExecutor {
 public:
  explicit SpmmExecutor(SpmmConfig cfg);

  const SpmmConfig& config() const { return cfg_; }

  /// Run the plan's chosen kernel against B.
  SpmmResult execute(const SpmmPlan& plan, const DenseMatrix& B) const;

  /// Run a specific kernel against B using the plan's operands
  /// (bypasses the plan's heuristic decision).
  SpmmResult execute(KernelKind kind, const SpmmPlan& plan, const DenseMatrix& B) const;

 private:
  SpmmConfig cfg_;
};

/// One row of a suite sweep: everything Fig. 4 / Fig. 16 plot per
/// matrix.
struct SuiteRow {
  /// Index of a kernel arm in `arm_error` (the four Fig. 16 arms).
  enum Arm : int { kArmBaseline = 0, kArmDcsrC, kArmOnlineB, kArmOfflineB, kArmCount };

  MatrixSpec spec;
  MatrixProfile profile;
  double t_baseline_ms = 0.0;      ///< CSR C-stationary row-per-warp
  double t_dcsr_c_ms = 0.0;        ///< untiled DCSR C-stationary
  double t_online_b_ms = 0.0;      ///< online tiled DCSR B-stationary
  double t_offline_b_ms = 0.0;     ///< offline tiled DCSR B-stationary
  double offline_prep_ms = 0.0;    ///< tiling preprocessing cost

  /// Row-level failure (matrix generation or planning threw): the
  /// "TypeName: what()" description; empty on success.
  std::string error;
  /// Per-arm failures (the arm's kernel threw); timings of failed arms
  /// stay zero.  Distinct arms write distinct slots, so the array needs
  /// no synchronization.
  std::array<std::string, kArmCount> arm_error{};

  bool ok() const {
    if (!error.empty()) return false;
    for (const auto& e : arm_error) {
      if (!e.empty()) return false;
    }
    return true;
  }
  /// "FAILED(<typed error>)" for reporting; empty string when ok().
  std::string failure_summary() const;

  double ratio_c_over_b() const { return t_dcsr_c_ms / t_online_b_ms; }
  double speedup_c_arm() const { return t_baseline_ms / t_dcsr_c_ms; }
  double speedup_online_b_arm() const { return t_baseline_ms / t_online_b_ms; }
  double speedup_offline_b_arm() const { return t_baseline_ms / t_offline_b_ms; }
};

/// What run_suite does with typed failures in row/arm tasks.  Either
/// way every already-submitted task drains (determinism: no early
/// abort); the policies differ only in what happens afterwards.
enum class SuiteErrorPolicy {
  kFailFast,  ///< rethrow the lowest-(row, arm) failure once all tasks drain
  kContinue,  ///< record FAILED rows/arms and return every row
};

/// Parse "fail_fast" / "continue"; throws ConfigError on anything else.
SuiteErrorPolicy parse_error_policy(const std::string& name);
const char* error_policy_name(SuiteErrorPolicy policy);

/// Called once per completed (non-degenerate) matrix, from the thread
/// that called run_suite, with `done` strictly increasing from 1.
using SuiteProgress = std::function<void(usize done, usize total, const SuiteRow&)>;

/// Durability / scheduling knobs for run_suite.  Defaults reproduce the
/// classic in-memory sweep: no journal, no deadlines, never cancelled.
struct SuiteOptions {
  /// Shared thread-pool size; <= 0 uses hardware concurrency.
  int jobs = 0;
  SuiteErrorPolicy policy = SuiteErrorPolicy::kFailFast;
  /// Checkpoint-journal path; empty disables journaling.
  std::string journal_path;
  /// Replay `journal_path` before running and execute only the
  /// remainder.  The journal must match this sweep's fingerprint
  /// (ConfigError otherwise); a missing-but-empty or fresh journal is a
  /// clean start.
  bool resume = false;
  /// fsync the journal every N appended entries (>= 1).  Larger
  /// intervals trade post-crash re-execution for fewer syncs.
  int checkpoint_interval = 1;
  /// Deadline per kernel arm, in milliseconds; <= 0 disables.  An arm
  /// over its deadline is cancelled cooperatively and recorded as a
  /// typed TimeoutError arm failure under `policy`.
  double arm_timeout_ms = 0.0;
  /// Deadline for the whole sweep, in milliseconds; <= 0 disables.
  /// Expiry cancels every in-flight arm and run_suite throws
  /// TimeoutError after the drain.
  double suite_timeout_ms = 0.0;
  /// External cancellation (e.g. a SIGINT handler).  CancelToken copies
  /// share state, so the caller keeps a copy and request()s it.
  CancelToken cancel{};
  /// Diagnostic/test hook invoked after every journal append with the
  /// writer's entry count; called from worker threads.
  std::function<void(usize entries)> on_checkpoint;
};

/// Run the four Fig. 16 kernels over a suite with dense B of K columns.
/// Rows are bit-identical across job counts AND across
/// interrupt/resume cycles (see SuiteOptions).  `cfg.fault` (when set)
/// is installed for the whole sweep.  Throws CancelledError when
/// `opts.cancel` fires (after draining in-flight work and writing the
/// final checkpoint) and TimeoutError when the suite deadline expires.
std::vector<SuiteRow> run_suite(std::span<const MatrixSpec> specs, const SpmmConfig& cfg,
                                index_t K, const SuiteProgress& progress,
                                const SuiteOptions& opts);

/// Classic entry point: in-memory sweep, no journal or deadlines.
std::vector<SuiteRow> run_suite(std::span<const MatrixSpec> specs, const SpmmConfig& cfg,
                                index_t K, const SuiteProgress& progress = {},
                                int jobs = 0,
                                SuiteErrorPolicy policy = SuiteErrorPolicy::kFailFast);

/// Derive the SSF threshold from completed suite rows (the Fig. 4
/// training pass).
SsfThreshold train_threshold(std::span<const SuiteRow> rows);

}  // namespace nmdt
