// Checkpoint journal for durable suite sweeps (core/executor run_suite).
//
// A sweep over matrices × kernel arms is hours of work at paper scale;
// this journal makes it survivable: every completed unit of work — a
// planned row's profile, a finished arm's timings, a typed row/arm
// failure — is appended to an on-disk record the moment it completes,
// and a resumed run replays the journal and schedules only the
// remainder.  The resume invariant the tests pin: interrupt at ANY
// point + resume is bit-identical to an uninterrupted run (suite table,
// per-arm timings, training output), because every journaled value is
// the exact f64/f32 bit pattern the arm produced and every non-journaled
// unit is a pure function of (spec, cfg, K) that re-executes
// identically.
//
// On-disk format (serialize-v2 conventions, formats/serialize.cpp):
//   magic "NMDJ" | u32 version | frame*
//   frame := u32 payload_len | payload | u32 crc32(payload)
// The first frame is the header (suite fingerprint, spec count, K); each
// later frame is one entry.  Appends are atomic-enough by construction:
// a torn tail (crash mid-write) is an *incomplete* trailing frame, which
// the reader silently drops — re-running that one unit is always safe —
// while a CRC mismatch in a complete frame means real corruption and
// surfaces as a typed FormatError, never a wrong resume.  A journal
// whose header fingerprint does not match the suite being run is
// rejected with ConfigError (resuming someone else's sweep would
// silently mix results).
#pragma once

#include <array>
#include <cstdio>
#include <iosfwd>
#include <map>
#include <mutex>
#include <optional>
#include <span>
#include <string>

#include "analysis/profile.hpp"
#include "kernels/spmm.hpp"
#include "matgen/suite.hpp"

namespace nmdt {

/// Fingerprint of everything that determines a sweep's results: the
/// matrix set (every spec field), K, the kernel-arm list, the tiling /
/// traversal / placement / arch / engine configuration, and the fault
/// plan.  Job count is deliberately excluded — results are bit-identical
/// at any --jobs, so a sweep may be resumed with different parallelism.
u64 suite_fingerprint(std::span<const MatrixSpec> specs, const SpmmConfig& cfg,
                      index_t K, int arm_count);

/// One journaled kernel arm: either timings (completed) or a typed
/// error description (failed).
struct JournalArmOutcome {
  double t_ms = 0.0;
  double prep_ms = 0.0;  ///< offline preprocessing cost (offline arm only)
  std::string error;     ///< describe_exception() string; empty = success
  bool failed() const { return !error.empty(); }
};

/// Everything the journal knows about one suite row.
struct JournalRow {
  bool planned = false;     ///< profile recorded (plan stage completed)
  bool degenerate = false;  ///< generated matrix had nnz == 0 (no row emitted)
  std::optional<std::string> error;  ///< row-level typed failure
  MatrixProfile profile;
  std::array<std::optional<JournalArmOutcome>, 4> arms;

  /// True when nothing remains to execute for this row.
  bool complete(int arm_count) const {
    if (degenerate || error.has_value()) return true;
    if (!planned) return false;
    for (int a = 0; a < arm_count; ++a) {
      if (!arms[static_cast<usize>(a)].has_value()) return false;
    }
    return true;
  }
};

/// Parsed journal contents, keyed by suite row index.
struct JournalReplay {
  u64 fingerprint = 0;
  i64 total = 0;  ///< spec count recorded in the header
  i64 k = 0;
  int arm_count = 0;
  std::map<usize, JournalRow> rows;
  usize entries = 0;   ///< complete entry frames read
  i64 bytes = 0;       ///< file bytes consumed (incl. dropped tail)
  /// Byte offset just past the last complete frame — the append point.
  /// When torn_tail is set this is smaller than `bytes`; the file must
  /// be truncated here before appending, or the residual partial frame's
  /// length prefix would span into the fresh frames and the next read
  /// would mis-frame (CRC mismatch on perfectly good data).
  i64 valid_bytes = 0;
  bool torn_tail = false;  ///< an incomplete trailing frame was dropped
  bool has_header = false;

  bool empty() const { return !has_header && rows.empty(); }
};

/// Flat little-endian byte encoding of a MatrixProfile — the exact
/// field layout journal row_planned entries use.  Shared with the
/// worker-process pipe protocol (src/proc) so a profile that crossed a
/// process boundary journals bit-identically to one produced in
/// process.  decode throws FormatError on a truncated buffer.
std::string encode_profile(const MatrixProfile& profile);
MatrixProfile decode_profile(std::string_view bytes);

/// Parse a journal byte stream.  Incomplete trailing frames are dropped
/// (torn_tail); an empty stream yields an empty replay (fresh start).
/// Throws ParseError on bad magic/version and FormatError on a CRC
/// mismatch or malformed entry payload inside a complete frame.
JournalReplay read_journal(std::istream& is);

/// read_journal over a file.  A missing file throws ParseError; an
/// empty file is a clean fresh start.
JournalReplay read_journal_file(const std::string& path);

/// Reject a replay that does not belong to the suite about to run
/// (fingerprint / spec count / K mismatch) with ConfigError.
void verify_journal(const JournalReplay& replay, u64 fingerprint, usize total,
                    index_t K, int arm_count);

/// Compact JSON summary of a replay (entry/row/arm counts) — validated
/// by obs/json_check in example_trace_lint and consumable by sweep
/// dashboards.
std::string journal_summary_json(const JournalReplay& replay,
                                 const std::string& path);

/// Append-side handle.  Thread-safe: suite arms complete on pool
/// threads and append concurrently; frames are serialized under one
/// mutex.  Data is fsynced every `checkpoint_interval` entries and once
/// more on flush(), bounding post-crash loss to the interval.
class JournalWriter {
 public:
  /// Open `path`.  `append` continues an existing journal (resume);
  /// otherwise the file is truncated and a fresh header written.
  JournalWriter(const std::string& path, u64 fingerprint, usize total, index_t K,
                int arm_count, int checkpoint_interval, bool append);
  ~JournalWriter();

  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;

  const std::string& path() const { return path_; }

  void row_planned(usize row, const MatrixProfile& profile);
  void row_degenerate(usize row);
  void row_error(usize row, const std::string& description);
  void arm_done(usize row, int arm, double t_ms, double prep_ms);
  void arm_error(usize row, int arm, const std::string& description);

  /// Entries appended through this writer (excludes the header and any
  /// pre-existing entries of an append-opened journal).
  usize entries() const;

  /// fflush + fsync; called automatically every checkpoint_interval
  /// entries and from the destructor.
  void flush();

 private:
  void append(const std::string& payload);

  std::string path_;
  std::FILE* file_ = nullptr;
  int interval_;
  mutable std::mutex mu_;
  usize entries_ = 0;
  usize unsynced_ = 0;
};

}  // namespace nmdt
