#include "core/get_dcsr_tile.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"

namespace nmdt {

DcsrTileHandle GetDCSRTile(const Csc& csc, index_t strip_id, index_t row_start,
                           std::span<index_t> col_frontier, const TilingSpec& spec,
                           ConversionEngine& engine) {
  spec.validate();
  static obs::Counter& requests =
      obs::MetricsRegistry::global().counter("engine.get_dcsr_tile");
  requests.add(1);
  obs::TraceSpan span("GetDCSRTile");
  const index_t col_begin = strip_id * spec.strip_width;
  NMDT_REQUIRE(col_begin >= 0 && col_begin < csc.cols, "strip_id out of range");
  const index_t col_end = std::min<index_t>(col_begin + spec.strip_width, csc.cols);
  const index_t lanes = col_end - col_begin;
  NMDT_REQUIRE(static_cast<index_t>(col_frontier.size()) >= lanes,
               "col_frontier must cover every strip column");

  // Rebuild the engine-side cursor from the caller's relative frontier.
  StripCursor cursor(csc, strip_id, spec);
  auto frontier = cursor.frontier();
  for (index_t l = 0; l < lanes; ++l) {
    const index_t off = col_frontier[l];
    NMDT_REQUIRE(off >= 0 && frontier[l] + off <= cursor.boundary()[l],
                 "col_frontier offset exceeds column length");
    frontier[l] += off;
  }

  DcsrTileHandle handle;
  handle.tile = engine.convert_tile_checked(csc, cursor, row_start, spec);
  handle.nnzrows = static_cast<index_t>(handle.tile.nnz_rows());
  handle.nnz = handle.tile.nnz();

  // Hand the advanced frontier back as within-column offsets.  Re-read
  // the span: a recovery retry may have reassigned the cursor's
  // frontier storage.
  frontier = cursor.frontier();
  for (index_t l = 0; l < lanes; ++l) {
    col_frontier[l] = frontier[l] - csc.col_ptr[col_begin + l];
  }
  span.arg("strip", static_cast<i64>(strip_id))
      .arg("row_begin", static_cast<i64>(row_start))
      .arg("nnzrows", static_cast<i64>(handle.nnzrows))
      .arg("nnz", static_cast<i64>(handle.nnz));
  return handle;
}

}  // namespace nmdt
