#include "matgen/generators.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <unordered_set>

#include "formats/convert.hpp"
#include "util/error.hpp"

namespace nmdt {

namespace {

value_t random_value(Rng& rng) { return static_cast<value_t>(rng.uniform(-1.0, 1.0)); }

/// Poisson sample; Knuth's method for small lambda, normal approximation
/// for large.  Degree distributions only — no statistical test rides on
/// the tail shape of the approximation.
i64 sample_poisson(Rng& rng, double lambda) {
  if (lambda <= 0.0) return 0;
  if (lambda < 30.0) {
    const double limit = std::exp(-lambda);
    double p = 1.0;
    i64 k = 0;
    do {
      ++k;
      p *= rng.uniform();
    } while (p > limit);
    return k - 1;
  }
  const double x = lambda + std::sqrt(lambda) * rng.normal();
  return std::max<i64>(0, static_cast<i64>(std::llround(x)));
}

/// Sample `count` distinct column indices in [0, cols) into `out`.
void sample_distinct_cols(Rng& rng, index_t cols, i64 count, std::vector<index_t>& out) {
  out.clear();
  count = std::min<i64>(count, cols);
  if (count <= 0) return;
  if (count * 3 >= cols) {
    // Dense case: reservoir over the full range.
    out.resize(static_cast<usize>(cols));
    std::iota(out.begin(), out.end(), index_t{0});
    for (index_t i = 0; i < count; ++i) {
      const i64 j = static_cast<i64>(i) + static_cast<i64>(rng.below(static_cast<u64>(cols - i)));
      std::swap(out[i], out[j]);
    }
    out.resize(static_cast<usize>(count));
  } else {
    std::unordered_set<index_t> seen;
    seen.reserve(static_cast<usize>(count) * 2);
    while (static_cast<i64>(seen.size()) < count) {
      seen.insert(static_cast<index_t>(rng.below(static_cast<u64>(cols))));
    }
    out.assign(seen.begin(), seen.end());
  }
  std::sort(out.begin(), out.end());
}

}  // namespace

Csr gen_uniform(index_t rows, index_t cols, double density, u64 seed) {
  NMDT_CHECK_CONFIG(rows > 0 && cols > 0, "gen_uniform requires positive dimensions");
  NMDT_CHECK_CONFIG(density >= 0.0 && density <= 1.0, "density must be in [0, 1]");
  Rng rng(seed);
  Csr csr;
  csr.rows = rows;
  csr.cols = cols;
  csr.row_ptr.reserve(static_cast<usize>(rows) + 1);
  csr.row_ptr.push_back(0);
  std::vector<index_t> row_cols;
  const double lambda = density * static_cast<double>(cols);
  for (index_t r = 0; r < rows; ++r) {
    sample_distinct_cols(rng, cols, sample_poisson(rng, lambda), row_cols);
    for (index_t c : row_cols) {
      csr.col_idx.push_back(c);
      csr.val.push_back(random_value(rng));
    }
    csr.row_ptr.push_back(static_cast<index_t>(csr.col_idx.size()));
  }
  return csr;
}

Csr gen_uniform_nnz(index_t rows, index_t cols, i64 nnz, u64 seed) {
  NMDT_CHECK_CONFIG(rows > 0 && cols > 0, "gen_uniform_nnz requires positive dimensions");
  const i64 cells = static_cast<i64>(rows) * cols;
  NMDT_CHECK_CONFIG(nnz >= 0 && nnz <= cells, "nnz must be in [0, rows*cols]");
  Rng rng(seed);
  std::unordered_set<i64> seen;
  seen.reserve(static_cast<usize>(nnz) * 2);
  Coo coo;
  coo.rows = rows;
  coo.cols = cols;
  while (static_cast<i64>(seen.size()) < nnz) {
    const i64 cell = static_cast<i64>(rng.below(static_cast<u64>(cells)));
    if (seen.insert(cell).second) {
      coo.push(static_cast<index_t>(cell / cols), static_cast<index_t>(cell % cols),
               random_value(rng));
    }
  }
  return csr_from_coo(coo);
}

namespace {

/// Shared core for the two power-law generators: sample target nnz
/// entries with one heavy-tailed axis and one uniform axis; duplicates
/// collapse in coalesce (slightly under-shooting nnz, as real collision
/// processes do).
Csr gen_powerlaw(index_t rows, index_t cols, double density, double skew, u64 seed,
                 bool heavy_rows) {
  NMDT_CHECK_CONFIG(rows > 0 && cols > 0, "power-law generator requires positive dims");
  NMDT_CHECK_CONFIG(density >= 0.0 && density <= 1.0, "density must be in [0, 1]");
  NMDT_CHECK_CONFIG(skew >= 0.0, "skew (zipf exponent) must be non-negative");
  Rng rng(seed);
  const i64 target = static_cast<i64>(density * static_cast<double>(rows) *
                                      static_cast<double>(cols));
  const ZipfSampler zipf(heavy_rows ? rows : cols, skew);
  // Scatter heavy labels across the index space (real heavy rows are not
  // sorted to the top), with a deterministic shuffle.
  std::vector<index_t> perm(static_cast<usize>(heavy_rows ? rows : cols));
  std::iota(perm.begin(), perm.end(), index_t{0});
  for (usize i = perm.size(); i > 1; --i) {
    std::swap(perm[i - 1], perm[rng.below(i)]);
  }
  Coo coo;
  coo.rows = rows;
  coo.cols = cols;
  for (i64 k = 0; k < target; ++k) {
    const index_t heavy = perm[static_cast<usize>(zipf(rng))];
    const index_t uniform_axis = static_cast<index_t>(
        rng.below(static_cast<u64>(heavy_rows ? cols : rows)));
    if (heavy_rows) {
      coo.push(heavy, uniform_axis, random_value(rng));
    } else {
      coo.push(uniform_axis, heavy, random_value(rng));
    }
  }
  coo.coalesce();
  // Duplicate collisions summed by coalesce would skew the value
  // distribution; re-draw values so entries stay in [-1, 1).
  for (auto& v : coo.val) v = random_value(rng);
  return csr_from_coo(coo);
}

}  // namespace

Csr gen_powerlaw_rows(index_t rows, index_t cols, double density, double skew, u64 seed) {
  return gen_powerlaw(rows, cols, density, skew, seed, /*heavy_rows=*/true);
}

Csr gen_powerlaw_cols(index_t rows, index_t cols, double density, double skew, u64 seed) {
  return gen_powerlaw(rows, cols, density, skew, seed, /*heavy_rows=*/false);
}

Csr gen_rmat(index_t scale, double edge_factor, double a, double b, double c, double d,
             u64 seed) {
  NMDT_CHECK_CONFIG(scale > 0 && scale < 31, "rmat scale must be in (0, 31)");
  NMDT_CHECK_CONFIG(edge_factor > 0.0, "rmat edge_factor must be positive");
  NMDT_CHECK_CONFIG(std::abs(a + b + c + d - 1.0) < 1e-9, "rmat probabilities must sum to 1");
  Rng rng(seed);
  const index_t n = index_t{1} << scale;
  const i64 edges = static_cast<i64>(edge_factor * static_cast<double>(n));
  Coo coo;
  coo.rows = n;
  coo.cols = n;
  for (i64 e = 0; e < edges; ++e) {
    index_t r = 0, col = 0;
    for (index_t bit = 0; bit < scale; ++bit) {
      const double u = rng.uniform();
      // Quadrant choice with +-5% per-level noise, the standard
      // smoothing that avoids perfectly self-similar artifacts.
      const double na = a * rng.uniform(0.95, 1.05);
      const double nb = b * rng.uniform(0.95, 1.05);
      const double nc = c * rng.uniform(0.95, 1.05);
      const double nd = d * rng.uniform(0.95, 1.05);
      const double sum = na + nb + nc + nd;
      const double x = u * sum;
      r <<= 1;
      col <<= 1;
      if (x < na) {
        // top-left
      } else if (x < na + nb) {
        col |= 1;
      } else if (x < na + nb + nc) {
        r |= 1;
      } else {
        r |= 1;
        col |= 1;
      }
    }
    coo.push(r, col, random_value(rng));
  }
  coo.coalesce();
  for (auto& v : coo.val) v = random_value(rng);
  return csr_from_coo(coo);
}

Csr gen_banded(index_t n, index_t bandwidth, double density_in_band, u64 seed) {
  NMDT_CHECK_CONFIG(n > 0, "gen_banded requires positive dimension");
  NMDT_CHECK_CONFIG(bandwidth >= 0, "bandwidth must be non-negative");
  NMDT_CHECK_CONFIG(density_in_band >= 0.0 && density_in_band <= 1.0,
                    "density_in_band must be in [0, 1]");
  Rng rng(seed);
  Csr csr;
  csr.rows = n;
  csr.cols = n;
  csr.row_ptr.push_back(0);
  for (index_t r = 0; r < n; ++r) {
    const index_t lo = std::max<index_t>(0, r - bandwidth);
    const index_t hi = std::min<index_t>(n - 1, r + bandwidth);
    for (index_t c = lo; c <= hi; ++c) {
      if (c == r || rng.chance(density_in_band)) {  // keep the diagonal
        csr.col_idx.push_back(c);
        csr.val.push_back(random_value(rng));
      }
    }
    csr.row_ptr.push_back(static_cast<index_t>(csr.col_idx.size()));
  }
  return csr;
}

Csr gen_block_clustered(index_t n, index_t num_blocks, double intra_density,
                        double inter_density, u64 seed) {
  NMDT_CHECK_CONFIG(n > 0 && num_blocks > 0 && num_blocks <= n,
                    "gen_block_clustered requires 0 < num_blocks <= n");
  Rng rng(seed);
  const index_t block = (n + num_blocks - 1) / num_blocks;
  Coo coo;
  coo.rows = n;
  coo.cols = n;
  // Dense-ish diagonal blocks.
  for (index_t b = 0; b < num_blocks; ++b) {
    const index_t lo = b * block;
    const index_t hi = std::min<index_t>(n, lo + block);
    for (index_t r = lo; r < hi; ++r) {
      for (index_t c = lo; c < hi; ++c) {
        if (rng.chance(intra_density)) coo.push(r, c, random_value(rng));
      }
    }
  }
  // Sparse background: sampled by expected count, duplicates coalesced.
  const double off_cells = static_cast<double>(n) * n -
                           static_cast<double>(num_blocks) * block * block;
  const i64 inter = static_cast<i64>(std::max(0.0, inter_density * off_cells));
  for (i64 k = 0; k < inter; ++k) {
    const index_t r = static_cast<index_t>(rng.below(static_cast<u64>(n)));
    const index_t c = static_cast<index_t>(rng.below(static_cast<u64>(n)));
    if (r / block != c / block) coo.push(r, c, random_value(rng));
  }
  coo.coalesce();
  for (auto& v : coo.val) v = random_value(rng);
  return csr_from_coo(coo);
}

Csr gen_magnitude_pruned(index_t rows, index_t cols, double density, index_t block_size,
                         u64 seed) {
  NMDT_CHECK_CONFIG(rows > 0 && cols > 0,
                    "gen_magnitude_pruned requires positive dimensions");
  NMDT_CHECK_CONFIG(density >= 0.0 && density <= 1.0, "density must be in [0, 1]");
  NMDT_CHECK_CONFIG(block_size > 0 && block_size <= rows && block_size <= cols,
                    "block_size must be in [1, min(rows, cols)]");
  Rng rng(seed);
  const index_t nb_r = (rows + block_size - 1) / block_size;
  const index_t nb_c = (cols + block_size - 1) / block_size;
  const i64 num_blocks = static_cast<i64>(nb_r) * nb_c;

  // One magnitude score per block, drawn in block-row-major order (the
  // block's pre-pruning L1 weight in a real layer); the top `density`
  // fraction survives.  Ties break toward the lower block index so the
  // cut is deterministic.
  std::vector<double> score(static_cast<usize>(num_blocks));
  for (double& s : score) s = std::abs(rng.normal());
  const i64 keep =
      std::min<i64>(num_blocks, static_cast<i64>(std::llround(
                                    density * static_cast<double>(num_blocks))));
  std::vector<i64> order(static_cast<usize>(num_blocks));
  std::iota(order.begin(), order.end(), i64{0});
  std::stable_sort(order.begin(), order.end(), [&](i64 a, i64 b) {
    return score[static_cast<usize>(a)] > score[static_cast<usize>(b)];
  });
  std::vector<u8> kept(static_cast<usize>(num_blocks), 0);
  for (i64 k = 0; k < keep; ++k) kept[static_cast<usize>(order[static_cast<usize>(k)])] = 1;

  // Surviving blocks are fully dense; element values share the block's
  // magnitude scale (weights that survive magnitude pruning cluster in
  // magnitude).  Cells emit in row-major order so the CSR is sorted.
  Csr csr;
  csr.rows = rows;
  csr.cols = cols;
  csr.row_ptr.reserve(static_cast<usize>(rows) + 1);
  csr.row_ptr.push_back(0);
  for (index_t r = 0; r < rows; ++r) {
    const index_t br = r / block_size;
    for (index_t bc = 0; bc < nb_c; ++bc) {
      if (!kept[static_cast<usize>(static_cast<i64>(br) * nb_c + bc)]) continue;
      const double scale = score[static_cast<usize>(static_cast<i64>(br) * nb_c + bc)];
      const index_t c_end = std::min<index_t>((bc + 1) * block_size, cols);
      for (index_t c = bc * block_size; c < c_end; ++c) {
        csr.col_idx.push_back(c);
        csr.val.push_back(static_cast<value_t>(scale * rng.uniform(-1.0, 1.0)));
      }
    }
    csr.row_ptr.push_back(static_cast<index_t>(csr.col_idx.size()));
  }
  return csr;
}

Csr gen_stencil_5pt(index_t grid_x, index_t grid_y) {
  NMDT_CHECK_CONFIG(grid_x > 0 && grid_y > 0, "stencil grid must be positive");
  const index_t n = grid_x * grid_y;
  Csr csr;
  csr.rows = n;
  csr.cols = n;
  csr.row_ptr.push_back(0);
  for (index_t y = 0; y < grid_y; ++y) {
    for (index_t x = 0; x < grid_x; ++x) {
      const index_t i = y * grid_x + x;
      auto add = [&](index_t j, value_t v) {
        csr.col_idx.push_back(j);
        csr.val.push_back(v);
      };
      if (y > 0) add(i - grid_x, -1.0f);
      if (x > 0) add(i - 1, -1.0f);
      add(i, 4.0f);
      if (x + 1 < grid_x) add(i + 1, -1.0f);
      if (y + 1 < grid_y) add(i + grid_x, -1.0f);
      csr.row_ptr.push_back(static_cast<index_t>(csr.col_idx.size()));
    }
  }
  return csr;
}

}  // namespace nmdt
