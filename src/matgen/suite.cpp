#include "matgen/suite.hpp"

#include <cmath>

#include "util/error.hpp"

namespace nmdt {

const char* family_name(MatrixFamily f) {
  switch (f) {
    case MatrixFamily::kUniform: return "uniform";
    case MatrixFamily::kPowerlawRows: return "powerlaw_rows";
    case MatrixFamily::kPowerlawCols: return "powerlaw_cols";
    case MatrixFamily::kRmat: return "rmat";
    case MatrixFamily::kBanded: return "banded";
    case MatrixFamily::kBlockClustered: return "block_clustered";
    case MatrixFamily::kStencil: return "stencil";
    case MatrixFamily::kMagnitudePruned: return "magnitude_pruned";
  }
  return "unknown";
}

Csr MatrixSpec::generate() const {
  switch (family) {
    case MatrixFamily::kUniform:
      return gen_uniform(rows, cols, density, seed);
    case MatrixFamily::kPowerlawRows:
      return gen_powerlaw_rows(rows, cols, density, skew, seed);
    case MatrixFamily::kPowerlawCols:
      return gen_powerlaw_cols(rows, cols, density, skew, seed);
    case MatrixFamily::kRmat:
      // skew holds the 'a' quadrant weight; spread the remainder in the
      // classic Graph500 0.19/0.19/rest split.
      return gen_rmat(aux, density /* edge factor */, skew, 0.19, 0.19,
                      1.0 - skew - 0.38, seed);
    case MatrixFamily::kBanded:
      return gen_banded(rows, aux, density, seed);
    case MatrixFamily::kBlockClustered:
      return gen_block_clustered(rows, aux, density, density / 50.0, seed);
    case MatrixFamily::kStencil:
      return gen_stencil_5pt(aux, rows / aux);
    case MatrixFamily::kMagnitudePruned:
      return gen_magnitude_pruned(rows, cols, density, aux, seed);
  }
  throw ConfigError("unknown matrix family");
}

namespace {

struct ScaleParams {
  index_t base;  ///< baseline dimension
  int sizes;     ///< number of size steps (base, 2*base, 4*base, ...)
  int seeds;     ///< seeds per configuration
};

ScaleParams params_for(SuiteScale scale) {
  // The paper filters its dataset to ≥4k rows because smaller grids
  // cannot fill the GPU (launch overhead dominates and every kernel
  // ties); the medium/large scales respect that at model scale.
  switch (scale) {
    case SuiteScale::kTiny: return {256, 1, 1};
    case SuiteScale::kSmall: return {1024, 1, 2};
    case SuiteScale::kMedium: return {4096, 1, 2};
    case SuiteScale::kLarge: return {4096, 2, 3};
  }
  throw ConfigError("unknown suite scale");
}

std::string spec_name(const MatrixSpec& s) {
  return std::string(family_name(s.family)) + "_n" + std::to_string(s.rows) + "_d" +
         std::to_string(s.density).substr(0, 7) + "_k" + std::to_string(s.skew).substr(0, 4) +
         "_s" + std::to_string(s.seed);
}

}  // namespace

std::vector<MatrixSpec> standard_suite(SuiteScale scale) {
  const ScaleParams p = params_for(scale);
  std::vector<MatrixSpec> out;
  u64 seed = 1000;

  auto add = [&](MatrixSpec s) {
    s.seed = seed++;
    s.name = spec_name(s);
    out.push_back(std::move(s));
  };

  // Densities span the hypersparse (nnz < rows, mostly-empty-row) to
  // moderately dense regimes; skews up to 2.0 create the heavy-row
  // critical-path cases of Sec. 5.2.
  const double densities[] = {2e-5, 1e-4, 5e-4, 2e-3, 1e-2};
  const double skews[] = {0.6, 1.0, 1.4, 2.0};

  for (int size_step = 0; size_step < p.sizes; ++size_step) {
    const index_t n = p.base << size_step;
    for (int rep = 0; rep < p.seeds; ++rep) {
      for (double d : densities) {
        add({.name = {}, .family = MatrixFamily::kUniform, .rows = n, .cols = n,
             .density = d});
        for (double k : skews) {
          add({.name = {}, .family = MatrixFamily::kPowerlawRows, .rows = n, .cols = n,
               .density = d, .skew = k});
          add({.name = {}, .family = MatrixFamily::kPowerlawCols, .rows = n, .cols = n,
               .density = d, .skew = k});
        }
      }
      // R-MAT: scale = log2(n), edge factors 8 and 16.
      index_t log2n = 0;
      while ((index_t{1} << log2n) < n) ++log2n;
      add({.name = {}, .family = MatrixFamily::kRmat, .rows = index_t{1} << log2n,
           .cols = index_t{1} << log2n, .density = 8.0, .skew = 0.57, .aux = log2n});
      add({.name = {}, .family = MatrixFamily::kRmat, .rows = index_t{1} << log2n,
           .cols = index_t{1} << log2n, .density = 16.0, .skew = 0.45, .aux = log2n});
      // Banded: narrow and wide band.
      add({.name = {}, .family = MatrixFamily::kBanded, .rows = n, .cols = n,
           .density = 0.4, .aux = 8});
      add({.name = {}, .family = MatrixFamily::kBanded, .rows = n, .cols = n,
           .density = 0.15, .aux = 64});
      // Block-clustered: few large and many small communities.
      add({.name = {}, .family = MatrixFamily::kBlockClustered, .rows = n, .cols = n,
           .density = 0.05, .aux = 8});
      add({.name = {}, .family = MatrixFamily::kBlockClustered, .rows = n, .cols = n,
           .density = 0.1, .aux = 32});
      // Stencil grid (structure deterministic; one per size is enough).
      if (rep == 0) {
        const index_t gx = static_cast<index_t>(std::lround(std::sqrt(n)));
        add({.name = {}, .family = MatrixFamily::kStencil, .rows = gx * gx,
             .cols = gx * gx, .aux = gx});
      }
      // Rectangular shapes: tall-skinny and wide.
      add({.name = {}, .family = MatrixFamily::kUniform, .rows = n * 4, .cols = n / 2,
           .density = 2e-3});
      add({.name = {}, .family = MatrixFamily::kUniform, .rows = n / 2, .cols = n * 4,
           .density = 2e-3});
    }
  }
  return out;
}

std::vector<MatrixSpec> smoke_suite() {
  std::vector<MatrixSpec> out;
  out.push_back({.name = "smoke_uniform", .family = MatrixFamily::kUniform, .rows = 512,
                 .cols = 512, .density = 2e-3, .seed = 1});
  out.push_back({.name = "smoke_plrows", .family = MatrixFamily::kPowerlawRows,
                 .rows = 512, .cols = 512, .density = 2e-3, .skew = 1.2, .seed = 2});
  out.push_back({.name = "smoke_plcols", .family = MatrixFamily::kPowerlawCols,
                 .rows = 512, .cols = 512, .density = 2e-3, .skew = 1.2, .seed = 3});
  out.push_back({.name = "smoke_rmat", .family = MatrixFamily::kRmat, .rows = 512,
                 .cols = 512, .density = 8.0, .skew = 0.57, .aux = 9, .seed = 4});
  out.push_back({.name = "smoke_banded", .family = MatrixFamily::kBanded, .rows = 512,
                 .cols = 512, .density = 0.3, .aux = 8, .seed = 5});
  out.push_back({.name = "smoke_blocks", .family = MatrixFamily::kBlockClustered,
                 .rows = 512, .cols = 512, .density = 0.08, .aux = 8, .seed = 6});
  out.push_back({.name = "smoke_stencil", .family = MatrixFamily::kStencil, .rows = 484,
                 .cols = 484, .aux = 22, .seed = 7});
  return out;
}

MatrixStats compute_stats(const Csr& csr) {
  MatrixStats s;
  s.rows = csr.rows;
  s.cols = csr.cols;
  s.nnz = csr.nnz();
  s.density = csr.density();

  std::vector<i64> col_counts(static_cast<usize>(csr.cols), 0);
  double row_sum = 0.0, row_sq = 0.0;
  for (index_t r = 0; r < csr.rows; ++r) {
    const double k = static_cast<double>(csr.row_nnz(r));
    row_sum += k;
    row_sq += k * k;
    if (k > 0) ++s.nonzero_rows;
    s.nnz_row_max = std::max(s.nnz_row_max, k);
  }
  for (index_t c : csr.col_idx) ++col_counts[c];
  double col_sum = 0.0, col_sq = 0.0;
  for (i64 k : col_counts) {
    const double kd = static_cast<double>(k);
    col_sum += kd;
    col_sq += kd * kd;
    if (k > 0) ++s.nonzero_cols;
    s.nnz_col_max = std::max(s.nnz_col_max, kd);
  }
  if (csr.rows > 0) {
    s.nnz_row_mean = row_sum / csr.rows;
    const double var = row_sq / csr.rows - s.nnz_row_mean * s.nnz_row_mean;
    s.nnz_row_cv = s.nnz_row_mean > 0 ? std::sqrt(std::max(0.0, var)) / s.nnz_row_mean : 0.0;
  }
  if (csr.cols > 0) {
    s.nnz_col_mean = col_sum / csr.cols;
    const double var = col_sq / csr.cols - s.nnz_col_mean * s.nnz_col_mean;
    s.nnz_col_cv = s.nnz_col_mean > 0 ? std::sqrt(std::max(0.0, var)) / s.nnz_col_mean : 0.0;
  }
  return s;
}

}  // namespace nmdt
