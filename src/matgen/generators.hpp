// Synthetic sparse-matrix generators.
//
// The paper evaluates on ~3,500 SuiteSparse matrices whose relevant
// properties are (a) density, (b) row/column non-zero distribution
// (uniform vs heavy-tailed), and (c) spatial clustering — these are the
// axes the SSF heuristic (Sec. 3.1.4) is built on.  Each generator
// below controls one of those axes explicitly, so sweeping generator
// parameters spans the same behavioural space as the collection
// (substitution documented in DESIGN.md Sec. 2).  All generators are
// deterministic given the seed.
#pragma once

#include "formats/coo.hpp"
#include "formats/csr.hpp"
#include "util/rng.hpp"

namespace nmdt {

/// Erdős–Rényi: every cell independently non-zero with probability
/// `density`.  Uniform non-zero distribution — the case where the paper
/// predicts C-stationary wins (atomic bandwidth hurts B-stationary).
Csr gen_uniform(index_t rows, index_t cols, double density, u64 seed);

/// Heavy-tailed ROW degrees (zipf exponent `skew`), uniform columns.
/// Produces the "skewed (row-wise) non-zero distribution / very small
/// nnz-per-row" regime of Sec. 3.1.4.
Csr gen_powerlaw_rows(index_t rows, index_t cols, double density, double skew, u64 seed);

/// Heavy-tailed COLUMN popularity, uniform rows — hot columns create
/// dense strips with high B-tile reuse (B-stationary friendly).
Csr gen_powerlaw_cols(index_t rows, index_t cols, double density, double skew, u64 seed);

/// R-MAT / Kronecker-style recursive generator (a+b+c+d = 1); the
/// standard model for scale-free graph adjacency structure, giving
/// clustered non-zeros and low entropy (high 1 - H_norm).
Csr gen_rmat(index_t scale, double edge_factor, double a, double b, double c, double d,
             u64 seed);

/// Band matrix: non-zeros within `bandwidth` of the diagonal with
/// probability `density_in_band`.  Models stencil/PDE matrices: highly
/// clustered, nearly empty strips away from the diagonal.
Csr gen_banded(index_t n, index_t bandwidth, double density_in_band, u64 seed);

/// Block-clustered: `num_blocks` diagonal blocks with `intra_density`,
/// background `inter_density` elsewhere.  Models community-structured
/// graphs.
Csr gen_block_clustered(index_t n, index_t num_blocks, double intra_density,
                        double inter_density, u64 seed);

/// 5-point Laplacian stencil on a grid_x × grid_y grid (deterministic
/// structure; values from the stencil).  The classic HPC sparse matrix.
Csr gen_stencil_5pt(index_t grid_x, index_t grid_y);

/// Exact-nnz uniform sampler: exactly `nnz` distinct cells.  Used where
/// tests need precise counts.
Csr gen_uniform_nnz(index_t rows, index_t cols, i64 nnz, u64 seed);

/// Magnitude-pruned block sparsity (DLMC-shaped).  The weight matrix of
/// a pruned DNN layer: partition rows×cols into block_size×block_size
/// blocks, rank blocks by a sampled magnitude score, keep the top
/// `density` fraction whole and prune the rest — the structured
/// magnitude-pruning pattern of the Deep Learning Matrix Collection.
/// Kept blocks are fully dense inside, giving near-uniform block
/// scatter with strong spatial clustering; values within a block share
/// its magnitude scale, as surviving weights do.  This is the natural
/// bf16 workload for the precision axis.
Csr gen_magnitude_pruned(index_t rows, index_t cols, double density, index_t block_size,
                         u64 seed);

}  // namespace nmdt
