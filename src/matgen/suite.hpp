// The named evaluation suite: a reproducible list of generator
// configurations standing in for the paper's SuiteSparse sweep
// (substitution documented in DESIGN.md).  Every spec carries its own
// seed, so a suite is fully determined by its scale.
#pragma once

#include <string>
#include <vector>

#include "formats/csr.hpp"
#include "matgen/generators.hpp"

namespace nmdt {

enum class MatrixFamily {
  kUniform,
  kPowerlawRows,
  kPowerlawCols,
  kRmat,
  kBanded,
  kBlockClustered,
  kStencil,
  kMagnitudePruned,  ///< DLMC-shaped magnitude-pruned block sparsity
};

const char* family_name(MatrixFamily f);

struct MatrixSpec {
  std::string name;
  MatrixFamily family = MatrixFamily::kUniform;
  index_t rows = 0;
  index_t cols = 0;
  double density = 0.0;  ///< target density (uniform/power-law/clustered)
  double skew = 0.0;     ///< zipf exponent (power-law) or rmat 'a'
  index_t aux = 0;       ///< bandwidth / num_blocks / grid_x / rmat scale / block size
  u64 seed = 0;

  /// Materialize the matrix. Deterministic.
  Csr generate() const;
};

/// How big the suite's matrices are.  The paper uses 4k–44k rows; the
/// simulator is size-parametric, so smaller scales preserve all ratios
/// while keeping host runtime bounded (see DESIGN.md Sec. 2).
enum class SuiteScale {
  kTiny,    ///< unit tests: ~256–512 rows
  kSmall,   ///< fast benches: ~512–2k rows
  kMedium,  ///< default figures: ~1k–4k rows
  kLarge,   ///< overnight-quality figures: ~4k–16k rows
};

/// Build the standard suite: families × densities × skews × seeds.
std::vector<MatrixSpec> standard_suite(SuiteScale scale);

/// A minimal diverse sample (one spec per family) for smoke tests.
std::vector<MatrixSpec> smoke_suite();

/// Descriptive statistics of a sparse matrix used by the heuristics and
/// several benches.
struct MatrixStats {
  index_t rows = 0;
  index_t cols = 0;
  i64 nnz = 0;
  double density = 0.0;
  double nnz_row_mean = 0.0;
  double nnz_row_max = 0.0;
  double nnz_row_cv = 0.0;  ///< coefficient of variation across rows
  double nnz_col_mean = 0.0;
  double nnz_col_max = 0.0;
  double nnz_col_cv = 0.0;
  i64 nonzero_rows = 0;
  i64 nonzero_cols = 0;
};

MatrixStats compute_stats(const Csr& csr);

}  // namespace nmdt
