// Blocked eigensolver: subspace (block power) iteration for the
// dominant eigenvalues of a symmetric sparse matrix — the classic
// blocked-eigensolver workload the paper cites as an SpMM consumer
// (Sec. 2: blocked eigen solvers, LOBPCG-family methods).
//
// Every iteration is one SpMM  Y = A·X  followed by a host-side
// Gram-Schmidt re-orthonormalization of the block.  The matrix is the
// 5-point Laplacian stencil on a grid, whose extreme eigenvalues are
// known in closed form — so the example checks the numerics end to end.
//
//   ./example_block_eigensolver [--grid 64] [--block 8] [--iters 60]
#include <cmath>
#include <iostream>

#include "core/spmm_engine.hpp"
#include "matgen/generators.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace nmdt;

namespace {

/// Orthonormalize the columns of X in place (modified Gram-Schmidt).
void orthonormalize(DenseMatrix& X) {
  for (index_t j = 0; j < X.cols(); ++j) {
    for (index_t i = 0; i < j; ++i) {
      double dot = 0.0;
      for (index_t r = 0; r < X.rows(); ++r) dot += X.at(r, i) * X.at(r, j);
      for (index_t r = 0; r < X.rows(); ++r) {
        X.at(r, j) -= static_cast<value_t>(dot) * X.at(r, i);
      }
    }
    double norm = 0.0;
    for (index_t r = 0; r < X.rows(); ++r) norm += X.at(r, j) * X.at(r, j);
    norm = std::sqrt(norm);
    if (norm > 0) {
      for (index_t r = 0; r < X.rows(); ++r) {
        X.at(r, j) = static_cast<value_t>(X.at(r, j) / norm);
      }
    }
  }
}

/// Rayleigh quotient of column j: xᵀ(Ax).
double rayleigh(const DenseMatrix& X, const DenseMatrix& AX, index_t j) {
  double q = 0.0;
  for (index_t r = 0; r < X.rows(); ++r) q += X.at(r, j) * AX.at(r, j);
  return q;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli(argc, argv);
  cli.declare("grid", "stencil grid side; matrix is grid^2 x grid^2 (default 64)");
  cli.declare("block", "subspace block width (default 8)");
  cli.declare("iters", "subspace iterations (default 60)");
  if (cli.has("help")) {
    std::cout << cli.help("block power iteration for the 2D Laplacian via SpMM");
    return 0;
  }
  cli.validate();
  const index_t grid = static_cast<index_t>(cli.get_int("grid", 64));
  const index_t block = static_cast<index_t>(cli.get_int("block", 8));
  const int iters = static_cast<int>(cli.get_int("iters", 60));

  const Csr A = gen_stencil_5pt(grid, grid);
  std::cout << "2D Laplacian: " << A.rows << " x " << A.cols << ", nnz " << A.nnz()
            << ", block " << block << "\n";

  Rng rng(11);
  DenseMatrix X(A.rows, block);
  X.randomize(rng);
  orthonormalize(X);

  EngineOptions options;
  options.spmm = evaluation_config(A.rows, block);
  options.verify = false;
  options.run_baseline = false;
  const SpmmEngine engine(options);

  double total_model_us = 0.0;
  DenseMatrix AX(A.rows, block);
  for (int it = 0; it < iters; ++it) {
    const SpmmReport step = engine.run(A, X);
    total_model_us += step.result.timing.total_ns * 1e-3;
    AX = step.result.C;
    X = AX;
    orthonormalize(X);
  }
  // One more product for clean Rayleigh quotients.
  AX = engine.run(A, X).result.C;

  // Exact dominant eigenvalue of the 5-point Laplacian on a grid with
  // Dirichlet boundary: 4 + 4·cos(pi/(g+1)) → 8 as g grows.
  const double exact =
      4.0 + 4.0 * std::cos(3.14159265358979323846 / (static_cast<double>(grid) + 1.0));

  Table table({"eigenpair", "rayleigh_quotient", "exact_top", "rel_err_vs_top"});
  for (index_t j = 0; j < block; ++j) {
    const double q = rayleigh(X, AX, j);
    table.begin_row()
        .cell(static_cast<i64>(j))
        .cell(q, 6)
        .cell(j == 0 ? format_double(exact, 6) : std::string("-"))
        .cell(j == 0 ? format_sci(std::abs(q - exact) / exact) : std::string("-"));
  }
  table.print(std::cout);
  std::cout << "\nmodelled GPU time for " << iters
            << " subspace iterations: " << format_double(total_model_us, 1) << " us\n";

  // A is the same matrix every iteration, so the engine plans (profiles
  // + converts formats) exactly once and every later run() is a cache
  // hit — the multi-vector amortization of Sec. 2 made explicit.
  const PlanCacheStats cache = engine.cache_stats();
  std::cout << "plan cache: " << cache.misses << " build(s), " << cache.hits
            << " hit(s) across " << (iters + 1) << " SpMM calls ("
            << format_bytes(static_cast<double>(cache.bytes)) << " resident)\n";

  const double q0 = rayleigh(X, AX, 0);
  if (std::abs(q0 - exact) / exact > 0.02) {
    std::cerr << "eigenvalue did not converge to the analytic value\n";
    return 1;
  }
  std::cout << "dominant eigenvalue converged to the analytic value (<2% error)\n";
  return 0;
}
