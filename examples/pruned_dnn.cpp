// Pruned neural network inference: the DNN motivation from the paper's
// introduction (magnitude-pruned weight tensors are sparse; the
// batched forward pass of a pruned fully-connected layer is SpMM:
// activations = W_sparse · batch).
//
// Builds a 3-layer MLP whose weight matrices are magnitude-pruned to a
// target sparsity with structured (neuron-importance) skew — pruned
// networks keep heavy rows for important neurons, giving exactly the
// clustered structure the near-memory engine exploits — runs a batch
// through it with every layer as one SpmmEngine call, and compares the
// three execution strategies per layer.
//
//   ./example_pruned_dnn [--width 2048] [--batch 64] [--keep 0.02]
#include <cmath>
#include <iostream>

#include "core/spmm_engine.hpp"
#include "matgen/generators.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace nmdt;

namespace {

/// A pruned weight matrix: per-neuron (row) budgets follow a zipf
/// importance profile, as magnitude pruning produces in practice.
Csr pruned_weights(index_t out_dim, index_t in_dim, double keep_fraction, u64 seed) {
  return gen_powerlaw_rows(out_dim, in_dim, keep_fraction, /*skew=*/1.1, seed);
}

void relu(DenseMatrix& m) {
  for (auto& v : m.data()) v = std::max(v, 0.0f);
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli(argc, argv);
  cli.declare("width", "hidden layer width (default 2048)");
  cli.declare("batch", "batch size = dense columns (default 64)");
  cli.declare("keep", "fraction of weights kept after pruning (default 0.02)");
  if (cli.has("help")) {
    std::cout << cli.help("pruned-MLP forward pass as a chain of SpMMs");
    return 0;
  }
  cli.validate();
  const index_t width = static_cast<index_t>(cli.get_int("width", 2048));
  const index_t batch = static_cast<index_t>(cli.get_int("batch", 64));
  const double keep = cli.get_double("keep", 0.02);

  const Csr layers[3] = {pruned_weights(width, width, keep, 21),
                         pruned_weights(width, width, keep, 22),
                         pruned_weights(width, width, keep / 2, 23)};

  Rng rng(31);
  DenseMatrix activations(width, batch);
  activations.randomize(rng);
  relu(activations);

  EngineOptions options;
  options.spmm = evaluation_config(width, batch);
  options.verify = true;
  const SpmmEngine engine(options);

  Table table({"layer", "kept_weights", "SSF", "strategy", "model_us",
               "baseline_us", "speedup", "max_err"});
  double total_us = 0.0, baseline_us = 0.0;
  for (int l = 0; l < 3; ++l) {
    const SpmmReport r = engine.run(layers[l], activations);
    activations = r.result.C;
    relu(activations);
    table.begin_row()
        .cell(static_cast<i64>(l))
        .cell(layers[l].nnz())
        .cell(format_sci(r.profile.ssf))
        .cell(strategy_name(r.chosen))
        .cell(r.result.timing.total_ns * 1e-3, 1)
        .cell(r.baseline->timing.total_ns * 1e-3, 1)
        .cell(r.speedup_vs_baseline, 2)
        .cell(format_sci(r.max_abs_error));
    total_us += r.result.timing.total_ns * 1e-3;
    baseline_us += r.baseline->timing.total_ns * 1e-3;
  }
  table.print(std::cout);

  double checksum = 0.0;
  for (value_t v : activations.data()) checksum += v;
  std::cout << "\nforward pass done; output checksum " << format_double(checksum, 3)
            << "\nnetwork total: " << format_double(total_us, 1) << " us vs baseline "
            << format_double(baseline_us, 1) << " us ("
            << format_double(baseline_us / total_us, 2) << "x)\n";
  return 0;
}
