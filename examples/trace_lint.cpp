// trace_lint: validate a Chrome trace-event JSON file (as written by
// `nmdt_cli --trace` or the obs::TraceSession exporter) and print a
// one-line summary.  Exit 0 iff the file is well-formed and every event
// carries the required keys — used as the tier-1 trace smoke check.
//
//   ./example_trace_lint --trace trace.json
//   ./example_trace_lint --trace any.json --json-only       (syntax check only)
//   ./example_trace_lint --metrics metrics.json             (--metrics snapshot)
//   ./example_trace_lint --journal sweep.nmdj               (checkpoint journal)
//
// --journal reads a binary checkpoint journal (core/journal.hpp),
// surfaces corruption as the usual typed-error exit codes (2 parse,
// 3 format, 4 config), and prints the replay summary as JSON after
// round-tripping it through the same validator the trace path uses.
#include <fstream>
#include <iostream>
#include <sstream>

#include "core/journal.hpp"
#include "obs/json_check.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"

namespace {

int lint_journal(const std::string& path) {
  using namespace nmdt;
  JournalReplay replay;
  try {
    replay = read_journal_file(path);
  } catch (const std::exception& e) {
    std::cerr << "trace_lint: " << path << ": " << describe_exception(e) << "\n";
    if (dynamic_cast<const ConfigError*>(&e)) return 4;
    if (dynamic_cast<const FormatError*>(&e)) return 3;
    return 2;
  }
  const std::string json = journal_summary_json(replay, path);
  std::string error;
  if (!obs::json_is_valid(json, &error)) {
    // The summary is generated; invalid JSON here is a library bug.
    std::cerr << "trace_lint: journal summary is not valid JSON: " << error << "\n";
    return 1;
  }
  std::cout << json;
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  nmdt::CliParser cli(argc, argv);
  cli.declare("trace", "trace/metrics JSON file to validate");
  cli.declare("json-only", "only check JSON well-formedness, not the trace schema");
  cli.declare("metrics",
              "validate a --metrics counters/gauges/histograms snapshot "
              "(schema + histogram bucket invariants)");
  cli.declare("journal",
              "validate a binary checkpoint journal and print its summary JSON");
  if (cli.has("help")) {
    std::cout << cli.help("trace_lint: validate Chrome trace-event JSON");
    return 0;
  }
  cli.validate();
  const std::string journal_path = cli.get("journal", "");
  if (!journal_path.empty()) return lint_journal(journal_path);
  const std::string metrics_path = cli.get("metrics", "");
  if (!metrics_path.empty()) {
    std::ifstream in(metrics_path, std::ios::binary);
    if (!in) {
      std::cerr << "trace_lint: cannot open " << metrics_path << "\n";
      return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    std::string error;
    nmdt::obs::MetricsCheckReport report;
    if (!nmdt::obs::validate_metrics_json(buf.str(), &error, &report)) {
      std::cerr << "trace_lint: " << metrics_path << ": " << error << "\n";
      return 1;
    }
    std::cout << metrics_path << ": ok — " << report.counters << " counters, "
              << report.gauges << " gauges, " << report.histograms
              << " histograms\n";
    return 0;
  }
  const std::string path = cli.get("trace", "");
  if (path.empty()) {
    std::cerr << "trace_lint: --trace <file.json>, --metrics <file.json> or "
                 "--journal <file.nmdj> is required\n";
    return 2;
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::cerr << "trace_lint: cannot open " << path << "\n";
    return 2;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();

  std::string error;
  if (cli.has("json-only")) {
    if (!nmdt::obs::json_is_valid(text, &error)) {
      std::cerr << "trace_lint: " << path << ": " << error << "\n";
      return 1;
    }
    std::cout << path << ": valid JSON (" << text.size() << " bytes)\n";
    return 0;
  }
  nmdt::obs::TraceCheckReport report;
  if (!nmdt::obs::validate_chrome_trace(text, &error, &report)) {
    std::cerr << "trace_lint: " << path << ": " << error << "\n";
    return 1;
  }
  std::cout << path << ": ok — " << report.events << " events ("
            << report.complete_spans << " spans, " << report.metadata
            << " metadata) on " << report.tracks << " tracks\n";
  return 0;
}
