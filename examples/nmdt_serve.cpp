// nmdt_serve: SpMM-as-a-service over JSON lines on stdin/stdout.
//
//   ./example_nmdt_serve --workers 2 --queue-capacity 64 &
//   echo '{"id":"r1","matrix":"gen:uniform:256x256:0.02:1","k":16}' \
//     | ./example_nmdt_serve
//
// One request per input line, one JSON response line per request (see
// src/service/protocol.hpp for the schema).  Admission control sheds
// over-capacity and over-quota requests with typed OverloadError
// responses carrying a retry_after_ms hint; admitted requests are
// served by a worker pool sharing one concurrency-hardened PlanCache,
// with concurrent requests against the same (matrix, kernel, precision)
// coalesced into one kernel execution.  Per-request deadlines unwind as
// TimeoutError responses; unrecovered conversion faults degrade to the
// reference CSR kernel (or a typed FaultError response with
// --no-fault-fallback).
//
// Graceful shutdown: SIGTERM/SIGINT (or stdin EOF) stops admission,
// drains every in-flight and queued request, flushes the --metrics
// snapshot, and exits 0.  A second signal escalates: in-flight work is
// cancelled cooperatively and answered with CancelledError responses —
// still exactly one response per accepted request, still exit 0.
// SIGHUP flushes a live --metrics snapshot without draining (poll the
// daemon's counters mid-run).  Operational errors on a single request
// never kill the daemon; only a malformed command line exits non-zero
// (the README exit-code table).
#include <atomic>
#include <chrono>
#include <csignal>
#include <iostream>
#include <limits>
#include <thread>

#include "fault/fault.hpp"
#include "obs/metrics.hpp"
#include "service/server.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/line_reader.hpp"

using namespace nmdt;
using namespace nmdt::service;

namespace {

/// Signal → main-loop handshake.  The handler only touches lock-free
/// state: a flag the read loop polls (SA_RESTART is off, so the blocked
/// stdin read returns early), and — on the second signal — the server's
/// CancelToken, whose request() is a lone CAS.
std::atomic<int> g_signals{0};

CancelToken& escalation_token() {
  static CancelToken token;
  return token;
}

extern "C" void on_shutdown_signal(int) {
  if (g_signals.fetch_add(1, std::memory_order_relaxed) >= 1) {
    escalation_token().request(CancelReason::kUser);
  }
}

/// SIGHUP → "flush a live metrics snapshot now, keep serving".  The
/// handler only sets this flag; a housekeeping thread does the actual
/// file write (write_json_file is nowhere near async-signal-safe).
std::atomic<bool> g_flush_metrics{false};

extern "C" void on_flush_signal(int) {
  g_flush_metrics.store(true, std::memory_order_relaxed);
}

void install_signal_handlers() {
  (void)escalation_token();  // construct before any signal can arrive
#if defined(__unix__) || defined(__APPLE__)
  struct sigaction sa{};
  sa.sa_handler = on_shutdown_signal;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // no SA_RESTART: interrupt the blocking stdin read
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);
  struct sigaction hup{};
  hup.sa_handler = on_flush_signal;
  sigemptyset(&hup.sa_mask);
  // SA_RESTART on purpose: a flush must NOT interrupt the blocking
  // stdin read — the daemon keeps serving, only the snapshot changes.
  hup.sa_flags = SA_RESTART;
  sigaction(SIGHUP, &hup, nullptr);
#else
  std::signal(SIGINT, on_shutdown_signal);
  std::signal(SIGTERM, on_shutdown_signal);
#endif
}

ServerOptions options_from(const CliParser& cli) {
  ServerOptions opts;
  opts.workers = static_cast<int>(cli.get_int("workers", 2));
  opts.queue_capacity = static_cast<usize>(
      std::max<i64>(1, cli.get_int("queue-capacity", 64)));
  opts.tenant_rate = cli.get_double("tenant-rate", 0.0);
  opts.tenant_burst = cli.get_double("tenant-burst", 8.0);
  opts.default_deadline_ms = cli.get_double("default-deadline-ms", 0.0);
  opts.plan_cache_bytes = cli.get_int("plan-cache-mb", 512) << 20;
  opts.plan_ttl_ms = cli.get_double("plan-ttl-ms", 0.0);
  opts.coalesce_max = static_cast<int>(cli.get_int("coalesce-max", 4));
  opts.coalesce_max_k = static_cast<index_t>(cli.get_int("coalesce-max-k", 256));
  opts.jobs = static_cast<int>(cli.get_int("jobs", 1));
  opts.fault_fallback = !cli.has("no-fault-fallback");
  opts.queue_hint_ms = cli.get_double("queue-hint-ms", 10.0);
  opts.isolate_workers = static_cast<int>(cli.get_int("isolate-workers", 0));
  opts.worker_mem_mb = cli.get_int("worker-mem-mb", 0);
  return opts;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli(argc, argv);
  cli.declare("workers", "worker threads serving admitted requests (default 2)");
  cli.declare("queue-capacity",
              "bounded admission queue depth; overflow sheds with OverloadError "
              "(default 64)");
  cli.declare("tenant-rate",
              "per-tenant token-bucket refill, requests/second; 0 disables "
              "quotas (default 0)");
  cli.declare("tenant-burst", "per-tenant token-bucket capacity (default 8)");
  cli.declare("default-deadline-ms",
              "deadline for requests without their own; 0 = none (default 0)");
  cli.declare("plan-cache-mb", "PlanCache byte budget in MiB (default 512)");
  cli.declare("plan-ttl-ms",
              "evict cached plans older than this; 0 = no TTL (default 0)");
  cli.declare("coalesce-max",
              "max concurrent same-key requests batched into one kernel "
              "execution; 1 disables coalescing (default 4)");
  cli.declare("coalesce-max-k", "max combined B columns per batch (default 256)");
  cli.declare("jobs", "intra-kernel shard threads per execution (default 1)");
  cli.declare("queue-hint-ms",
              "expected per-request service time seeding the admission EWMA, "
              "so cold-start retry_after_ms hints are honest (default 10)");
  cli.declare("isolate-workers",
              "execute kernels in N supervised worker processes: crashes are "
              "respawned+retried, poison requests answered with WorkerError; "
              "0 = in-process (default 0)");
  cli.declare("worker-mem-mb",
              "address-space rlimit per isolated worker in MiB; 0 = unlimited "
              "(default 0)");
  cli.declare("max-line-bytes",
              "request line byte cap; longer lines get a ParseError response "
              "(default 1 MiB)");
  cli.declare("metrics",
              "write a counters/gauges/histograms JSON snapshot here on exit");
  cli.declare("no-fault-fallback",
              "surface unrecovered conversion faults as FaultError responses "
              "instead of degrading to the reference CSR kernel");
  cli.declare("fault-site",
              "fault injection site for chaos testing: none | tile_row_id | "
              "tile_col_idx | tile_val | cache_entry | suite_arm | shard_exec | "
              "serialized_stream | worker_abort | worker_hang (default none)");
  cli.declare("fault-rate", "per-event injection probability in [0, 1] (default 0)");
  cli.declare("fault-seed", "seed of the deterministic fault sequence (default 0)");
  if (cli.has("help")) {
    std::cout << cli.help("nmdt_serve: JSON-lines SpMM request daemon");
    return 0;
  }

  std::string metrics_path;
  std::optional<fault::FaultScope> fault_scope;
  try {
    cli.validate();
    metrics_path = cli.get("metrics", "");
    const usize max_line_bytes = static_cast<usize>(std::max<i64>(
        64, cli.get_int("max-line-bytes", static_cast<i64>(kDefaultMaxLineBytes))));
    fault::FaultPlan plan;
    plan.site = fault::parse_site(cli.get("fault-site", "none"));
    plan.rate = cli.get_double("fault-rate", 0.0);
    plan.seed = static_cast<u64>(cli.get_int("fault-seed", 0));
    NMDT_CHECK_CONFIG(plan.rate >= 0.0 && plan.rate <= 1.0,
                      "--fault-rate must be in [0, 1]");
    if (plan.site != fault::FaultSite::kNone) fault_scope.emplace(plan);

    const ServerOptions opts = options_from(cli);
    SpmmServer server(opts, [](const Response& r) {
      // Called under the server's sink mutex: one response per line,
      // flushed so clients see it before the next is serialized.
      std::cout << to_json_line(r) << '\n' << std::flush;
    });
    // Chain the escalation token to the server: a second SIGTERM
    // request()s it, which cancels the server's in-flight work.
    escalation_token() = server.cancel_token();
    install_signal_handlers();
    server.start();
    std::cerr << "nmdt_serve: ready (workers=" << opts.workers
              << " queue=" << opts.queue_capacity
              << " coalesce=" << opts.coalesce_max
              << (opts.isolate_workers > 0
                      ? " isolate=" + std::to_string(opts.isolate_workers)
                      : std::string())
              << ")\n";

    // Housekeeping: service SIGHUP flush requests off the signal path.
    // The read loop stays blocked in stdin (SA_RESTART), so this thread
    // is the only place a live snapshot can be written from.  The guard
    // joins on every exit path, including exceptions.
    struct Housekeeper {
      std::atomic<bool> stop{false};
      std::thread thread;
      ~Housekeeper() {
        stop.store(true, std::memory_order_relaxed);
        if (thread.joinable()) thread.join();
      }
    } housekeeper;
    housekeeper.thread = std::thread([&] {
      const auto service_flush = [&] {
        if (!g_flush_metrics.exchange(false, std::memory_order_relaxed)) return;
        if (!metrics_path.empty()) {
          obs::MetricsRegistry::global().write_json_file(metrics_path);
          std::cerr << "nmdt_serve: metrics snapshot flushed to "
                    << metrics_path << "\n";
        } else {
          std::cerr << "nmdt_serve: SIGHUP ignored (no --metrics path)\n";
        }
      };
      while (!housekeeper.stop.load(std::memory_order_relaxed)) {
        service_flush();
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
      }
      service_flush();  // a HUP racing shutdown is serviced, not dropped
    });

    std::string line;
    u64 line_no = 0;
    while (g_signals.load(std::memory_order_relaxed) == 0) {
      try {
        if (!read_bounded_line(std::cin, line, max_line_bytes, "request")) break;
      } catch (const std::exception& e) {
        // Oversized line: typed response, then discard the remainder so
        // the next request starts on a line boundary.  ignore()
        // discards without buffering, so the cap still bounds memory.
        ++line_no;
        Response r = error_response("line-" + std::to_string(line_no), "default", e);
        std::cout << to_json_line(r) << '\n' << std::flush;
        std::cin.clear();
        std::cin.ignore(std::numeric_limits<std::streamsize>::max(), '\n');
        continue;
      }
      ++line_no;
      if (line.empty() || line == "\r") continue;
      try {
        server.submit(parse_request(line, line_no));
      } catch (const std::exception& e) {
        // Parse failures never reach the queue: answer directly.
        Response r = error_response("line-" + std::to_string(line_no), "default", e);
        std::cout << to_json_line(r) << '\n' << std::flush;
      }
    }

    std::cerr << "nmdt_serve: draining\n";
    server.begin_shutdown();
    server.drain();
    const ServerStats s = server.stats();
    std::cerr << "nmdt_serve: done (submitted=" << s.submitted
              << " accepted=" << s.accepted << " ok=" << s.completed_ok
              << " error=" << s.completed_error
              << " shed=" << (s.shed_queue_full + s.shed_over_quota + s.shed_shutdown)
              << " coalesced=" << s.coalesced_requests << ")\n";
  } catch (const std::exception& e) {
    std::cerr << "error: " << describe_exception(e) << "\n";
    if (!metrics_path.empty()) obs::MetricsRegistry::global().write_json_file(metrics_path);
    return exit_code_for(e);
  }
  if (!metrics_path.empty()) {
    obs::MetricsRegistry::global().write_json_file(metrics_path);
    std::cerr << "metrics: " << metrics_path << "\n";
  }
  return 0;
}
