// nmdt_cli: a small driver exposing the library's main entry points for
// scripting — profile a matrix, run SpMM through the heuristic engine,
// convert formats, or sweep the built-in suite, with Matrix Market and
// NMDT-binary I/O.
//
//   ./example_nmdt_cli --cmd profile  --matrix m.mtx
//   ./example_nmdt_cli --cmd run      --matrix m.mtx --k 64
//   ./example_nmdt_cli --cmd convert  --matrix m.mtx --out m.bin
//   ./example_nmdt_cli --cmd suite    --scale small --k 64 --out suite.csv
//
// Any command accepts --trace <out.json> (Chrome trace-event JSON,
// loadable in Perfetto / chrome://tracing) and --metrics <out.json>
// (counters/gauges/histograms snapshot).  Tracing off is a strict
// no-op: outputs are bit-identical with or without it.
//
// Fault injection (--fault-site/--fault-rate/--fault-seed) installs a
// deterministic fault plan for the whole command; --error-policy
// selects how the suite runner treats typed failures.  Typed errors map
// to distinct exit codes: 2 ParseError, 3 FormatError, 4 ConfigError,
// 5 unrecovered fault, 6 deadline exceeded, 130 cancelled (SIGINT),
// 1 anything else.
//
// Durable sweeps: `--cmd suite --journal sweep.nmdj` checkpoints every
// completed (row, arm) to disk; Ctrl-C drains in-flight arms, writes a
// final checkpoint, and exits 130 with a resume hint.  `--resume
// sweep.nmdj` replays the journal and runs only the remainder —
// bit-identical to an uninterrupted sweep.  `--arm-timeout` /
// `--suite-timeout` bound runaway arms / the whole sweep.
#include <algorithm>
#include <csignal>
#include <fstream>
#include <iostream>
#include <optional>

#include "analysis/sampling.hpp"
#include "core/executor.hpp"
#include "core/plan.hpp"
#include "core/spmm_engine.hpp"
#include "fault/fault.hpp"
#include "formats/footprint.hpp"
#include "formats/matrix_market.hpp"
#include "formats/retype.hpp"
#include "formats/serialize.hpp"
#include "matgen/generators.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/trace.hpp"
#include "obs/trace_analysis.hpp"
#include "proc/suite.hpp"
#include "transform/comparator.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/table.hpp"

using namespace nmdt;

namespace {

/// Process-wide cancellation shared with the signal handler.  Touched
/// once in main() before the handler is installed so the function-local
/// static is constructed outside signal context.
CancelToken& global_cancel() {
  static CancelToken token;
  return token;
}

/// CancelToken::request is a lone CAS on an atomic — async-signal-safe.
/// The sweep drains cooperatively and main() exits 130.
extern "C" void on_interrupt(int) { global_cancel().request(CancelReason::kUser); }

void install_signal_handlers() {
  (void)global_cancel();  // construct before any signal can arrive
#if defined(__unix__) || defined(__APPLE__)
  struct sigaction sa{};
  sa.sa_handler = on_interrupt;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // no SA_RESTART: interrupt blocking I/O so polls run
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);
#else
  std::signal(SIGINT, on_interrupt);
  std::signal(SIGTERM, on_interrupt);
#endif
}

Csr load_input(const CliParser& cli) {
  const std::string path = cli.get("matrix", "");
  if (path.empty()) {
    // Demo matrix when none is given.
    return gen_powerlaw_rows(4096, 4096, 0.002, 1.2, 1);
  }
  if (path.size() > 4 && path.substr(path.size() - 4) == ".bin") {
    return load_csr_file(path);
  }
  Coo coo = read_matrix_market_file(path);
  return csr_from_coo(coo);
}

int cmd_profile(const CliParser& cli) {
  const Csr A = load_input(cli);
  const TilingSpec spec{64, 64};
  const double sample = cli.get_double("sample", 1.0);
  MatrixProfile p;
  if (sample < 1.0) {
    p = profile_matrix_sampled(A, spec, sample, 7).profile;
  } else {
    p = profile_matrix(A, spec);
  }
  Table t({"quantity", "value"});
  t.begin_row().cell("rows x cols").cell(std::to_string(A.rows) + " x " +
                                         std::to_string(A.cols));
  t.begin_row().cell("nnz").cell(p.stats.nnz);
  t.begin_row().cell("density").cell(format_sci(p.stats.density));
  t.begin_row().cell("nnz/row mean / max").cell(
      format_double(p.stats.nnz_row_mean, 2) + " / " +
      format_double(p.stats.nnz_row_max, 0));
  t.begin_row().cell("H_norm").cell(p.h_norm, 4);
  t.begin_row().cell("SSF").cell(format_sci(p.ssf));
  t.begin_row().cell("recommended strategy").cell(
      strategy_name(select_strategy(p.ssf, EngineOptions::default_ssf_threshold())));
  t.print(std::cout);
  return 0;
}

constexpr KernelKind kAllKernels[] = {
    KernelKind::kCsrCStationaryRowWarp,  KernelKind::kCsrCStationaryRowThread,
    KernelKind::kDcsrCStationary,        KernelKind::kTiledCsrBStationary,
    KernelKind::kTiledDcsrBStationary,   KernelKind::kTiledDcsrOnline,
    KernelKind::kAStationary,            KernelKind::kMergeCStationary,
    KernelKind::kHongHybrid,
};

std::vector<KernelKind> parse_kernel_selection(const std::string& sel) {
  if (sel == "all") return {std::begin(kAllKernels), std::end(kAllKernels)};
  for (KernelKind k : kAllKernels) {
    if (sel == kernel_name(k)) return {k};
  }
  std::string names = "all";
  for (KernelKind k : kAllKernels) names += std::string(" | ") + kernel_name(k);
  throw ParseError("unknown --kernel '" + sel + "' (expected " + names + ")");
}

template <class T>
bool bitwise_equal(const DenseMatrixT<T>& x, const DenseMatrixT<T>& y) {
  const auto xs = x.data();
  const auto ys = y.data();
  if (xs.size() != ys.size()) return false;
  for (usize i = 0; i < xs.size(); ++i) {
    if (xs[i] != ys[i]) return false;
  }
  return true;
}

/// --kernel sweep: run the selected kernel(s) directly (no heuristic),
/// at jobs 1 and 4, checking (a) bit-identity across the jobs axis
/// within the chosen precision and (b) the fSPMV tolerance bound
/// against an f64 reference on the same stored operands.
int run_kernel_sweep(const Csr& A, const DenseMatrix& B, const SpmmConfig& cfg,
                     const std::vector<KernelKind>& kernels) {
  const auto plan =
      build_plan(A, {cfg.tiling, default_ssf_threshold(), 1.0, cfg.precision});
  // One f64 reference and one set of row scales serve every kernel: all
  // arms compute the same product from the same stored-precision A/B.
  DenseMatrixT<double> ref(0, 0);
  std::vector<double> scales;
  dispatch_precision(cfg.precision, [&](auto tag) {
    using V = typename decltype(tag)::type;
    const CsrT<V>& a = plan->operands_at<V>().csr;
    const DenseMatrixT<V> b = retype<V>(B);
    ref = spmm_reference_f64(a, b);
    scales = ToleranceComparator::row_scales(a, b);
  });
  const ToleranceComparator cmp(default_tolerance(cfg.precision));

  Table t({"kernel", "jobs 1 == jobs 4", "tolerance", "max rel err"});
  bool all_ok = true;
  for (KernelKind kind : kernels) {
    SpmmConfig c1 = cfg, c4 = cfg;
    c1.jobs = 1;
    c4.jobs = 4;
    const SpmmResult r1 = SpmmExecutor(c1).execute(kind, *plan, B);
    const SpmmResult r4 = SpmmExecutor(c4).execute(kind, *plan, B);
    const bool identical = bitwise_equal(r1.C, r4.C) && bitwise_equal(r1.C64, r4.C64) &&
                           r1.counters == r4.counters && r1.mem == r4.mem;
    const DenseMatrixT<double> actual =
        cfg.precision == Precision::kF64 ? r1.C64 : retype<double>(r1.C);
    const ToleranceVerdict v = cmp.compare(ref, actual, scales);
    all_ok = all_ok && identical && v.pass;
    t.begin_row()
        .cell(kernel_name(kind))
        .cell(identical ? "yes" : "DIVERGED")
        .cell(v.pass ? "pass" : "FAIL (" + std::to_string(v.mismatched) + " of " +
                                    std::to_string(v.compared) + ")")
        .cell(format_sci(v.max_rel_error));
  }
  t.print(std::cout);
  std::cout << (all_ok ? "all kernels verified" : "VERIFICATION FAILED") << " at "
            << precision_name(cfg.precision) << " (eps " << format_sci(cmp.eps())
            << ")\n";
  return all_ok ? 0 : 1;
}

int cmd_run(const CliParser& cli) {
  const Csr A = load_input(cli);
  const index_t K = static_cast<index_t>(cli.get_int("k", 64));
  Rng rng(2);
  DenseMatrix B(A.cols, K);
  B.randomize(rng);
  EngineOptions options;
  options.spmm = evaluation_config(A.rows, K);
  options.spmm.jobs = static_cast<int>(cli.get_int("jobs", 1));
  options.spmm.precision = parse_precision(cli.get("precision", "f32"));
  options.profile_sample_fraction = cli.get_double("sample", 1.0);
  const std::string kernel_sel = cli.get("kernel", "");
  if (!kernel_sel.empty()) {
    return run_kernel_sweep(A, B, options.spmm, parse_kernel_selection(kernel_sel));
  }
  const SpmmReport r = SpmmEngine(options).run(A, B);
  std::cout << "strategy " << strategy_name(r.chosen) << " via " << kernel_name(r.kernel)
            << "; modelled " << format_double(r.result.timing.total_ns * 1e-3, 1)
            << " us; speedup " << format_double(r.speedup_vs_baseline, 2)
            << "x; max |err| " << format_sci(r.max_abs_error) << "\n";
  if (r.tolerance) {
    std::cout << "tolerance (" << precision_name(options.spmm.precision) << "): "
              << (r.tolerance->pass ? "pass" : "FAIL") << "; max rel err "
              << format_sci(r.tolerance->max_rel_error) << "; " << r.tolerance->mismatched
              << " of " << r.tolerance->compared << " elements out of bound\n";
  }
  if (r.result.used_fallback) {
    std::cerr << "note: unrecovered conversion fault degraded the run to the "
                 "reference CSR kernel\n";
  }
  return r.tolerance && !r.tolerance->pass ? 1 : 0;
}

int cmd_convert(const CliParser& cli) {
  const Csr A = load_input(cli);
  const std::string out = cli.get("out", "out.bin");
  if (out.size() > 4 && out.substr(out.size() - 4) == ".mtx") {
    write_matrix_market_file(out, coo_from_csr(A));
  } else {
    save_csr_file(out, A);
  }
  const Footprint f = footprint(A);
  std::cout << "wrote " << out << " (" << A.rows << " x " << A.cols << ", nnz "
            << A.nnz() << ", " << format_bytes(static_cast<double>(f.total())) << ")\n";
  return 0;
}

int cmd_suite(const CliParser& cli) {
  const std::string scale_name = cli.get("scale", "small");
  SuiteScale scale = SuiteScale::kSmall;
  if (scale_name == "tiny") scale = SuiteScale::kTiny;
  else if (scale_name == "small") scale = SuiteScale::kSmall;
  else if (scale_name == "medium") scale = SuiteScale::kMedium;
  else if (scale_name == "large") scale = SuiteScale::kLarge;
  else throw ParseError("unknown --scale: " + scale_name);
  const index_t K = static_cast<index_t>(cli.get_int("k", 64));
  SuiteOptions opts;
  opts.jobs = static_cast<int>(cli.get_int("jobs", 0));
  opts.policy = parse_error_policy(cli.get("error-policy", "fail_fast"));
  // --resume <journal> both names the journal and requests the replay;
  // --journal alone starts a fresh checkpointed sweep.
  opts.journal_path = cli.get("resume", cli.get("journal", ""));
  opts.resume = !cli.get("resume", "").empty();
  opts.checkpoint_interval = static_cast<int>(cli.get_int("checkpoint-interval", 1));
  opts.arm_timeout_ms = cli.get_double("arm-timeout", 0.0);
  opts.suite_timeout_ms = cli.get_double("suite-timeout", 0.0);
  opts.cancel = global_cancel();
  // Both ways out of an unfinished sweep — SIGINT (CancelledError) and
  // a suite deadline (TimeoutError) — leave completed work checkpointed,
  // so both deserve the resume hint.
  const auto resume_hint = [&opts] {
    if (!opts.journal_path.empty()) {
      std::cerr << "interrupted; resume with: --cmd suite --resume "
                << opts.journal_path << "\n";
    }
  };
  SpmmConfig suite_cfg = evaluation_config(4096, K);
  suite_cfg.precision = parse_precision(cli.get("precision", "f32"));
  // --isolate-workers N runs every row/arm in supervised worker
  // *processes*: crashes are retried with backoff, poison arms are
  // quarantined as WorkerError, and rows stay bit-identical to the
  // in-process path at any worker count.
  const int isolate = static_cast<int>(cli.get_int("isolate-workers", 0));
  proc::ProcOptions proc_opts;
  proc_opts.workers = isolate;
  proc_opts.worker_mem_mb = cli.get_int("worker-mem-mb", 0);
  const auto suite_progress = [](usize done, usize total, const SuiteRow& r) {
    if (!r.ok()) {
      std::cerr << r.spec.name << ": " << r.failure_summary() << "\n";
    } else if (done % 25 == 0) {
      std::cerr << done << "/" << total << "\n";
    }
  };
  std::vector<SuiteRow> rows;
  try {
    rows = isolate > 0
               ? proc::run_suite_isolated(standard_suite(scale), suite_cfg, K,
                                          suite_progress, opts, proc_opts)
               : run_suite(standard_suite(scale), suite_cfg, K, suite_progress, opts);
  } catch (const CancelledError&) {
    resume_hint();
    throw;
  } catch (const TimeoutError&) {
    resume_hint();
    throw;
  }
  Table t({"matrix", "status", "ssf", "t_baseline_ms", "t_dcsr_c_ms", "t_online_b_ms"});
  std::vector<SuiteRow> ok_rows;
  for (const auto& r : rows) {
    t.begin_row()
        .cell(r.spec.name)
        .cell(r.ok() ? "ok" : r.failure_summary())
        .cell(format_sci(r.profile.ssf))
        .cell(r.t_baseline_ms, 4)
        .cell(r.t_dcsr_c_ms, 4)
        .cell(r.t_online_b_ms, 4);
    if (r.ok()) ok_rows.push_back(r);
  }
  const std::string out = cli.get("out", "suite.csv");
  t.write_csv(out);
  if (ok_rows.empty()) {
    // Every row failed (e.g. an aggressive --arm-timeout under
    // --error-policy continue): the table is still useful, training is
    // not.
    std::cout << rows.size() << " matrices (all failed) -> " << out
              << "; no completed rows to train on\n";
    return 0;
  }
  // Failed rows carry zero timings; train only on completed ones.
  const SsfThreshold th = train_threshold(ok_rows);
  std::cout << rows.size() << " matrices (" << rows.size() - ok_rows.size()
            << " failed) -> " << out << "; learned SSF_th " << format_sci(th.threshold)
            << " (accuracy " << format_double(th.accuracy, 3) << ")\n";
  return 0;
}

/// Offline trace analytics: load a `--trace` artifact back in and emit
/// a self-contained markdown report (hotspots, critical path, folded
/// stacks), optionally diffed against a second trace.
int cmd_report(const CliParser& cli) {
  const std::string in_path = cli.get("in", "");
  if (in_path.empty()) {
    throw ParseError("--cmd report requires --in <trace.json> (a --trace artifact)");
  }
  const obs::TraceProfile profile = obs::analyze_trace_file(in_path);

  obs::ReportOptions opts;
  opts.top_n = static_cast<usize>(std::max<i64>(1, cli.get_int("top", 15)));
  opts.trace_label = in_path;

  std::optional<obs::TraceProfile> base;
  const std::string diff_path = cli.get("diff", "");
  if (!diff_path.empty()) {
    base = obs::analyze_trace_file(diff_path);
    opts.diff_label = diff_path;
  }

  const std::string folded_path = cli.get("folded", "");
  if (!folded_path.empty()) {
    std::ofstream folded(folded_path);
    NMDT_REQUIRE(folded.good(), "cannot open folded-stacks output path");
    folded << obs::folded_stacks(profile);
    std::cerr << "folded stacks: " << folded_path << " (" << profile.folded.size()
              << " stacks)\n";
  }

  const std::string out = cli.get("out", "");
  if (out.empty()) {
    obs::write_markdown_report(std::cout, profile, opts, base ? &*base : nullptr);
  } else {
    std::ofstream os(out);
    NMDT_REQUIRE(os.good(), "cannot open report output path");
    obs::write_markdown_report(os, profile, opts, base ? &*base : nullptr);
    std::cerr << "report: " << out << " (" << profile.spans.size() << " spans, "
              << profile.labels.size() << " labels)\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli(argc, argv);
  cli.declare("cmd", "profile | run | convert | suite | report");
  cli.declare("matrix", "input: .mtx (Matrix Market) or .bin (NMDT binary)");
  cli.declare("out", "output file (convert/suite)");
  cli.declare("k", "dense columns (run/suite; default 64)");
  cli.declare("sample", "row fraction for sampled profiling (default 1.0 = full)");
  cli.declare("scale", "suite scale (suite; default small)");
  cli.declare("jobs",
              "host threads: suite-runner threads (suite; default: hardware "
              "concurrency) or intra-kernel shard threads (run; default 1; "
              "results are identical at any value)");
  cli.declare("precision",
              "stored value type: f32 | f64 | bf16 (run/suite; default f32). "
              "Non-f32 runs are tolerance-verified against an f64 reference");
  cli.declare("kernel",
              "run this kernel (or 'all') directly at jobs {1, 4} with "
              "bit-identity and tolerance checks instead of the heuristic "
              "engine (run)");
  cli.declare("trace", "write a Chrome trace-event JSON of the command (any cmd)");
  cli.declare("metrics", "write a counters/gauges/histograms JSON snapshot (any cmd)");
  cli.declare("fault-site",
              "fault injection site: none | tile_row_id | tile_col_idx | tile_val | "
              "cache_entry | suite_arm | shard_exec | serialized_stream | "
              "worker_abort | worker_hang (default none)");
  cli.declare("fault-rate", "per-event injection probability in [0, 1] (default 0)");
  cli.declare("fault-seed", "seed of the deterministic fault sequence (default 0)");
  cli.declare("error-policy",
              "suite failure handling: fail_fast | continue (suite; default fail_fast)");
  cli.declare("journal",
              "checkpoint-journal path: append every completed (row, arm) so an "
              "interrupted sweep can be resumed (suite)");
  cli.declare("resume",
              "resume a sweep from this checkpoint journal; replays completed work "
              "and runs only the remainder (suite)");
  cli.declare("checkpoint-interval",
              "fsync the journal every N entries (suite; default 1)");
  cli.declare("arm-timeout",
              "deadline per kernel arm in ms; overrunning arms become typed "
              "TimeoutError rows (suite; default 0 = off)");
  cli.declare("suite-timeout",
              "deadline for the whole sweep in ms; expiry cancels in-flight arms "
              "and exits 6 (suite; default 0 = off)");
  cli.declare("isolate-workers",
              "run the sweep in N supervised worker processes: crashes retry "
              "with backoff, poison arms become typed WorkerError rows (exit 8 "
              "under fail_fast), output stays bit-identical to in-process "
              "(suite; default 0 = in-process)");
  cli.declare("worker-mem-mb",
              "RLIMIT_AS cap per isolated worker in MiB (suite; default 0 = "
              "unlimited)");
  cli.declare("perf",
              "attach hardware-counter args (hw.*) to kernel/plan/arm trace "
              "spans via perf_event_open, falling back to rusage where "
              "unavailable; NMDT_PERF_EVENTS=off disables (any cmd)");
  cli.declare("in", "input trace JSON, a --trace artifact (report)");
  cli.declare("diff", "baseline trace JSON to diff against (report)");
  cli.declare("folded", "write collapsed flamegraph stacks to this path (report)");
  cli.declare("top", "hotspot table rows (report; default 15)");
  if (cli.has("help")) {
    std::cout << cli.help("nmdt_cli: profile / run / convert / suite");
    return 0;
  }
  install_signal_handlers();
  int rc = 0;
  std::string trace_path, metrics_path;
  std::optional<obs::TraceSession> session;
  std::optional<fault::FaultScope> fault_scope;
  try {
    cli.validate();
    trace_path = cli.get("trace", "");
    metrics_path = cli.get("metrics", "");
    fault::FaultPlan plan;
    plan.site = fault::parse_site(cli.get("fault-site", "none"));
    plan.rate = cli.get_double("fault-rate", 0.0);
    plan.seed = static_cast<u64>(cli.get_int("fault-seed", 0));
    NMDT_CHECK_CONFIG(plan.rate >= 0.0 && plan.rate <= 1.0,
                      "--fault-rate must be in [0, 1]");
    if (plan.site != fault::FaultSite::kNone) fault_scope.emplace(plan);
    if (cli.has("perf")) obs::set_profiling_enabled(true);
    if (!trace_path.empty()) {
      session.emplace();
      session->install();
    }
    const std::string cmd = cli.get("cmd", "run");
    if (cmd == "profile") rc = cmd_profile(cli);
    else if (cmd == "run") rc = cmd_run(cli);
    else if (cmd == "convert") rc = cmd_convert(cli);
    else if (cmd == "suite") rc = cmd_suite(cli);
    else if (cmd == "report") rc = cmd_report(cli);
    else throw ParseError("unknown --cmd '" + cmd + "' (try --help)");
  } catch (const std::exception& e) {
    std::cerr << "error: " << describe_exception(e) << "\n";
    rc = exit_code_for(e);
  }
  // Trace/metrics snapshots are written even when the command failed —
  // they are the first thing to look at when diagnosing a fault.
  if (session) {
    session->uninstall();
    session->write_chrome_json_file(trace_path);
    std::cerr << "trace: " << trace_path << " (" << session->events().size()
              << " spans)\n";
  }
  if (!metrics_path.empty()) {
    obs::MetricsRegistry::global().write_json_file(metrics_path);
    std::cerr << "metrics: " << metrics_path << "\n";
  }
  return rc;
}
