// Graph analytics: multi-seed personalized PageRank by power iteration,
// one of the paper's motivating SpMM applications (graph centrality,
// Sec. 2).  Each column of the dense multi-vector X is the rank vector
// of one seed; every iteration is one SpMM  X ← α·Aᵀ_norm·X + (1-α)·S.
//
// The adjacency matrix comes from the R-MAT generator (scale-free, like
// real web/social graphs); its clustered structure is exactly the
// regime where the SSF heuristic routes to the online-converted
// B-stationary kernel.
//
//   ./example_graph_centrality [--scale 12] [--seeds 64] [--iters 20]
#include <iostream>

#include "core/spmm_engine.hpp"
#include "formats/convert.hpp"
#include "matgen/generators.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace nmdt;

namespace {

/// Column-normalize the adjacency matrix transpose: P = Aᵀ D⁻¹, so that
/// P x propagates rank along out-edges.
Csr transition_matrix(const Csr& adjacency) {
  // Build Aᵀ with values 1/outdeg(v); out-degree of v = row v of A.
  Coo coo;
  coo.rows = adjacency.cols;
  coo.cols = adjacency.rows;
  for (index_t v = 0; v < adjacency.rows; ++v) {
    const i64 deg = adjacency.row_nnz(v);
    if (deg == 0) continue;
    const value_t w = 1.0f / static_cast<value_t>(deg);
    for (index_t k = adjacency.row_ptr[v]; k < adjacency.row_ptr[v + 1]; ++k) {
      coo.push(adjacency.col_idx[k], v, w);
    }
  }
  return csr_from_coo(coo);
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli(argc, argv);
  cli.declare("scale", "R-MAT scale, vertices = 2^scale (default 12)");
  cli.declare("seeds", "number of personalization seeds = B columns (default 64)");
  cli.declare("iters", "power iterations (default 20)");
  if (cli.has("help")) {
    std::cout << cli.help("multi-seed personalized PageRank via SpMM");
    return 0;
  }
  cli.validate();
  const index_t scale = static_cast<index_t>(cli.get_int("scale", 12));
  const index_t seeds = static_cast<index_t>(cli.get_int("seeds", 64));
  const int iters = static_cast<int>(cli.get_int("iters", 20));
  const value_t alpha = 0.85f;

  const Csr adjacency = gen_rmat(scale, 16.0, 0.57, 0.19, 0.19, 0.05, 7);
  const Csr P = transition_matrix(adjacency);
  const index_t n = P.rows;
  std::cout << "graph: " << n << " vertices, " << adjacency.nnz() << " edges, "
            << seeds << " seeds\n";

  // Seed matrix S: one basis column per seed vertex (spread over the id
  // space); X starts at S.
  DenseMatrix S(n, seeds, 0.0f);
  for (index_t s = 0; s < seeds; ++s) S.at((s * 977) % n, s) = 1.0f;
  DenseMatrix X = S;

  EngineOptions options;
  options.spmm = evaluation_config(n, seeds);
  options.verify = false;       // verified once below, not per iteration
  options.run_baseline = false;
  const SpmmEngine engine(options);

  double total_model_us = 0.0;
  double residual = 0.0;
  for (int it = 0; it < iters; ++it) {
    const SpmmReport step = engine.run(P, X);
    total_model_us += step.result.timing.total_ns * 1e-3;
    // X' = alpha * P X + (1 - alpha) * S, tracking the iteration delta.
    residual = 0.0;
    for (index_t r = 0; r < n; ++r) {
      for (index_t c = 0; c < seeds; ++c) {
        const value_t next = alpha * step.result.C.at(r, c) + (1 - alpha) * S.at(r, c);
        residual = std::max(residual, std::abs(static_cast<double>(next - X.at(r, c))));
        X.at(r, c) = next;
      }
    }
    if (it == 0) {
      std::cout << "heuristic chose " << strategy_name(step.chosen) << " (SSF "
                << format_sci(step.profile.ssf) << ")\n";
    }
  }

  // One-shot verification of the final SpMM against the reference.
  const DenseMatrix check = spmm_reference(P, X);
  const SpmmResult last = engine.run_kernel(KernelKind::kTiledDcsrOnline, P, X);
  std::cout << "final-iteration SpMM verified, max |err| = "
            << format_sci(last.C.max_abs_diff(check)) << "\n";

  // Rank mass sanity and the top vertex of seed 0.
  index_t best = 0;
  for (index_t r = 1; r < n; ++r) {
    if (X.at(r, 0) > X.at(best, 0)) best = r;
  }
  std::cout << iters << " iterations, final delta " << format_sci(residual)
            << "; seed-0 top vertex: " << best << " (rank "
            << format_sci(X.at(best, 0)) << ")\n"
            << "modelled GPU time for all iterations: "
            << format_double(total_model_us, 1) << " us\n";
  return 0;
}
