// Quickstart: the five-minute tour of the public API.
//
//   1. Build (or load) a sparse matrix A and a dense multi-vector B.
//   2. Hand them to SpmmEngine: it profiles A, computes the SSF
//      heuristic, picks B- vs C-stationary, runs the kernel on the GPU
//      model (online near-memory CSC→DCSR conversion for the B arm),
//      verifies the numerics, and reports modelled performance.
//
//   ./example_quickstart [--n 4096] [--density 0.002] [--k 64]
//                        [--skew 0.0] [--matrix file.mtx]
#include <iostream>

#include "core/spmm_engine.hpp"
#include "formats/matrix_market.hpp"
#include "matgen/generators.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace nmdt;

int main(int argc, char** argv) {
  CliParser cli(argc, argv);
  cli.declare("n", "matrix dimension (default 4096)");
  cli.declare("density", "non-zero density (default 0.002)");
  cli.declare("k", "dense B columns (default 64)");
  cli.declare("skew", "zipf row skew; 0 = uniform (default 1.2, a typical graph-like skew)");
  cli.declare("matrix", "Matrix Market file instead of a generated matrix");
  if (cli.has("help")) {
    std::cout << cli.help("quickstart: profile -> select -> run -> report");
    return 0;
  }
  cli.validate();

  const index_t n = static_cast<index_t>(cli.get_int("n", 4096));
  const double density = cli.get_double("density", 0.002);
  const index_t K = static_cast<index_t>(cli.get_int("k", 64));
  const double skew = cli.get_double("skew", 1.2);

  // 1. The sparse input.
  Csr A;
  if (cli.has("matrix")) {
    A = csr_from_coo(read_matrix_market_file(cli.get("matrix", "")));
  } else if (skew > 0.0) {
    A = gen_powerlaw_rows(n, n, density, skew, /*seed=*/1);
  } else {
    A = gen_uniform(n, n, density, /*seed=*/1);
  }
  Rng rng(2);
  DenseMatrix B(A.cols, K);
  B.randomize(rng);

  // 2. Run through the engine.
  EngineOptions options;
  options.spmm = evaluation_config(A.rows, K);
  const SpmmEngine engine(options);
  const SpmmReport report = engine.run(A, B);

  std::cout << "matrix: " << A.rows << " x " << A.cols << ", nnz " << A.nnz()
            << " (density " << format_sci(A.density()) << ")\n"
            << "SSF = " << format_sci(report.profile.ssf) << "  (threshold "
            << format_sci(options.ssf_threshold) << ", H_norm "
            << format_double(report.profile.h_norm, 3) << ")\n"
            << "chosen strategy: " << strategy_name(report.chosen) << " via kernel "
            << kernel_name(report.kernel) << "\n"
            << "verified against dense reference, max |err| = "
            << format_sci(report.max_abs_error) << "\n\n";

  Table perf({"quantity", "value"});
  perf.begin_row().cell("modelled kernel time").cell(
      format_double(report.result.timing.total_ns * 1e-3, 1) + " us");
  perf.begin_row().cell("baseline (untiled CSR) time").cell(
      format_double(report.baseline->timing.total_ns * 1e-3, 1) + " us");
  perf.begin_row().cell("speedup vs baseline").cell(report.speedup_vs_baseline, 2);
  perf.begin_row().cell("DRAM traffic").cell(
      format_bytes(static_cast<double>(report.result.mem.total_dram_bytes())));
  perf.begin_row().cell("stall: memory / SM / other %").cell(
      format_double(report.result.timing.frac_memory * 100, 1) + " / " +
      format_double(report.result.timing.frac_sm * 100, 1) + " / " +
      format_double(report.result.timing.frac_other * 100, 1));
  if (report.result.engine.elements > 0) {
    perf.begin_row().cell("engine: elements converted").cell(
        static_cast<i64>(report.result.engine.elements));
    perf.begin_row().cell("engine: busy time").cell(
        format_double(report.result.engine_busy_ns * 1e-3, 2) + " us");
  }
  perf.print(std::cout);
  return 0;
}
