// Format explorer: inspect how a matrix (generated or loaded from a
// Matrix Market file) looks in every format the library implements —
// footprints (the Fig. 8/9 ratios for this one matrix), strip-density
// structure (Fig. 5), profile/SSF, the Table 1 traffic estimates, and a
// live walk of the online conversion API for its first strip.
//
//   ./example_format_explorer [--matrix file.mtx] [--n 4096]
//                             [--density 0.002] [--family uniform]
#include <iostream>

#include "analysis/traffic_model.hpp"
#include "core/get_dcsr_tile.hpp"
#include "formats/convert.hpp"
#include "formats/footprint.hpp"
#include "util/error.hpp"
#include "formats/matrix_market.hpp"
#include "matgen/generators.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace nmdt;

int main(int argc, char** argv) {
  CliParser cli(argc, argv);
  cli.declare("matrix", "Matrix Market file to inspect");
  cli.declare("n", "generated matrix dimension (default 4096)");
  cli.declare("density", "generated matrix density (default 0.002)");
  cli.declare("family", "generator: uniform | powerlaw_rows | rmat | banded (default uniform)");
  if (cli.has("help")) {
    std::cout << cli.help("inspect a sparse matrix across all formats");
    return 0;
  }
  cli.validate();

  Csr A;
  if (cli.has("matrix")) {
    A = csr_from_coo(read_matrix_market_file(cli.get("matrix", "")));
  } else {
    const index_t n = static_cast<index_t>(cli.get_int("n", 4096));
    const double d = cli.get_double("density", 0.002);
    const std::string family = cli.get("family", "uniform");
    if (family == "uniform") A = gen_uniform(n, n, d, 5);
    else if (family == "powerlaw_rows") A = gen_powerlaw_rows(n, n, d, 1.4, 5);
    else if (family == "rmat") A = gen_rmat(12, 16.0, 0.57, 0.19, 0.19, 0.05, 5);
    else if (family == "banded") A = gen_banded(n, 64, 0.15, 5);
    else throw ParseError("unknown --family: " + family);
  }

  const TilingSpec spec{64, 64};
  std::cout << "matrix: " << A.rows << " x " << A.cols << ", nnz " << A.nnz()
            << ", density " << format_sci(A.density()) << "\n\n";

  // Footprints across formats.
  const Csc csc = csc_from_csr(A);
  const Dcsr dcsr = dcsr_from_csr(A);
  const TiledCsr tcsr = tiled_csr_from_csr(A, spec);
  const TiledDcsr tdcsr = tiled_dcsr_from_csr(A, spec);
  const Footprint f_csr = footprint(A);
  Table fmts({"format", "data", "metadata", "total", "vs_CSR"});
  auto fmt_row = [&](const char* name, const Footprint& f) {
    fmts.begin_row()
        .cell(name)
        .cell(format_bytes(static_cast<double>(f.data_bytes)))
        .cell(format_bytes(static_cast<double>(f.metadata_bytes)))
        .cell(format_bytes(static_cast<double>(f.total())))
        .cell(static_cast<double>(f.total()) / static_cast<double>(f_csr.total()), 2);
  };
  fmt_row("CSR", f_csr);
  fmt_row("CSC", footprint(csc));
  fmt_row("DCSR (untiled)", footprint(dcsr));
  fmt_row("tiled CSR 64x64", footprint(tcsr));
  fmt_row("tiled DCSR 64x64", footprint(tdcsr));
  fmts.print(std::cout);

  // Strip structure (Fig. 5 view of this matrix).
  const std::vector<double> density = strip_nonzero_row_density(A, spec.strip_width);
  std::cout << "\nvertical strips (" << density.size() << "): mean non-zero-row share "
            << format_double(100.0 * mean(density), 2) << "%, max "
            << format_double(100.0 * percentile(density, 100), 2) << "%\n";

  // Profile / SSF / Table 1 estimates.
  const MatrixProfile p = profile_matrix(A, spec);
  std::cout << "H_norm " << format_double(p.h_norm, 4) << ", SSF "
            << format_sci(p.ssf) << ", strip row segments "
            << p.total_strip_row_segments << "\n\n";
  Table traffic({"strategy", "A_MB", "B_MB", "C_MB", "total_MB"});
  for (Strategy s : {Strategy::kAStationary, Strategy::kBStationary,
                     Strategy::kCStationary}) {
    const TrafficEstimate e = estimate_traffic(p, s, 64, spec);
    traffic.begin_row()
        .cell(strategy_name(s))
        .cell(e.a_bytes / 1e6, 2)
        .cell(e.b_bytes / 1e6, 2)
        .cell(e.c_bytes / 1e6, 2)
        .cell(e.total() / 1e6, 2);
  }
  traffic.print(std::cout);

  // Walk the first strip through the online conversion API (Fig. 11).
  ConversionEngine engine;
  std::vector<index_t> frontier(static_cast<usize>(spec.strip_width), 0);
  i64 nnz_converted = 0, tiles = 0, nonempty = 0;
  for (index_t row_start = 0; row_start < A.rows; row_start += spec.tile_height) {
    const DcsrTileHandle h = GetDCSRTile(csc, 0, row_start, frontier, spec, engine);
    nnz_converted += h.nnz;
    ++tiles;
    if (h.nnz > 0) ++nonempty;
  }
  std::cout << "\nonline conversion of strip 0: " << tiles << " tiles (" << nonempty
            << " non-empty), " << nnz_converted << " elements, "
            << engine.stats().steps << " engine beats, modelled busy "
            << format_double(engine.stats().busy_ns(engine.hw()) * 1e-3, 2) << " us\n";
  return 0;
}
