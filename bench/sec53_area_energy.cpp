// Sec. 5.3 — area, energy, and throughput accounting of the conversion
// engine: pipeline fit against HBM2 pseudo-channel delivery, prefetch
// buffer sizing, per-engine and per-system area/power on GV100 and the
// TU116 scaling point.
#include "bench_common.hpp"

#include "formats/convert.hpp"
#include "matgen/generators.hpp"
#include "transform/buffer_model.hpp"
#include "transform/hw_model.hpp"

using namespace nmdt;

int main(int argc, char** argv) {
  bench::BenchEnv env("sec53_area_energy", argc, argv);
  bench::banner(env.name, "transform-engine area / energy / throughput (Sec. 5.3)");

  const EngineHwModel hw;

  Table pipe({"quantity", "value", "paper"});
  pipe.begin_row()
      .cell("pseudo-channel beat, FP32 (8 B)")
      .cell(format_double(hw.cycle_ns_sp, 3) + " ns")
      .cell("0.588 ns");
  pipe.begin_row()
      .cell("pseudo-channel beat, FP64 (12 B)")
      .cell(format_double(hw.cycle_ns_dp, 3) + " ns")
      .cell("0.882 ns");
  pipe.begin_row()
      .cell("worst pipeline stage (comparator)")
      .cell(format_double(hw.worst_stage_ns, 3) + " ns")
      .cell("0.339 ns");
  pipe.begin_row()
      .cell("pipeline meets FP32 delivery")
      .cell(hw.pipeline_meets_throughput(false) ? "yes" : "NO")
      .cell("yes");
  pipe.begin_row()
      .cell("equivalent engine throughput")
      .cell(format_double(8.0 / hw.cycle_ns_sp, 1) + " GB/s")
      .cell("13.6 GB/s per pseudo channel");
  pipe.print(std::cout);
  std::cout << "\n";

  Table buf({"quantity", "value", "paper"});
  buf.begin_row()
      .cell("prefetch buffer per column")
      .cell(format_bytes(static_cast<double>(hw.buffer_bytes_per_lane)))
      .cell("256 B");
  buf.begin_row()
      .cell("buffer per engine (64 lanes)")
      .cell(format_bytes(static_cast<double>(hw.buffer_bytes_total())))
      .cell("16 KiB");
  buf.begin_row()
      .cell("latency to hide (frontier + DRAM CL)")
      .cell(format_double(hw.latency_to_hide_ns(), 1) + " ns")
      .cell("3.3 + 15 ns");
  buf.begin_row()
      .cell("buffer coverage FP32")
      .cell(format_double(hw.buffer_coverage_ns(false), 1) + " ns")
      .cell(">= 18.8 ns");
  buf.begin_row()
      .cell("buffer coverage FP64")
      .cell(format_double(hw.buffer_coverage_ns(true), 1) + " ns")
      .cell(">= 18.8 ns");
  buf.print(std::cout);
  std::cout << "\n";

  Table sys({"system", "engines", "area_mm2", "area_%die", "peak_W_fp32", "peak_W_fp64",
             "%TDP", "%idle_power", "beat_needed_ns", "pipeline_fits"});
  // GV100 and TU116 are the paper's points; A100 extrapolates the
  // "cost proportional to bandwidth" scaling law to HBM2e.
  for (const ArchConfig& arch :
       {ArchConfig::gv100(), ArchConfig::tu116(), ArchConfig::a100()}) {
    const EngineSystemCosts c = engine_system_costs(hw, arch);
    sys.begin_row()
        .cell(arch.name)
        .cell(i64{c.engines})
        .cell(c.total_area_mm2, 2)
        .cell(100.0 * c.area_fraction_of_die, 2)
        .cell(c.peak_power_w_sp, 2)
        .cell(c.peak_power_w_dp, 2)
        .cell(100.0 * c.power_fraction_of_tdp, 2)
        .cell(100.0 * c.power_fraction_of_idle, 2)
        .cell(EngineHwModel::required_beat_ns(arch.bw_per_channel_gbps), 3)
        .cell(hw.pipeline_meets_bandwidth(arch.bw_per_channel_gbps) ? "yes" : "NO");
  }
  env.emit(sys);

  std::cout << "paper: GV100 4.9 mm2 (0.6% of 815 mm2), 0.68 W FP32 / 0.51 W FP64,\n"
            << "       0.27% of TDP, 2.96% of idle power; TU116 1.85 mm2 (0.65%).\n\n";

  // Dynamic validation of the buffer sizing: replay the worst-case
  // single-column drain and a real conversion trace against several
  // buffer capacities; 256 B/lane is the smallest with zero stalls on
  // the worst case (the paper's case study).
  const Csr csr = gen_uniform(4096, 64, 0.01, 77);
  const Csc csc = csc_from_csr(csr);
  const std::vector<int> worst = single_lane_trace(4096);
  const std::vector<int> real = conversion_lane_trace(csc, 0, TilingSpec{64, 64});

  Table buf_sweep({"buffer_per_lane", "worst_case_stall_%", "real_trace_stall_%"});
  for (i64 bytes : {i64{32}, i64{64}, i64{128}, i64{256}, i64{512}}) {
    EngineHwModel variant = hw;
    variant.buffer_bytes_per_lane = bytes;
    const BufferSimResult w = simulate_prefetch_buffer(variant, worst);
    const BufferSimResult r = simulate_prefetch_buffer(variant, real);
    buf_sweep.begin_row()
        .cell(format_bytes(static_cast<double>(bytes)))
        .cell(100.0 * w.stall_fraction(), 2)
        .cell(100.0 * r.stall_fraction(), 2);
  }
  buf_sweep.print(std::cout);
  buf_sweep.write_csv(env.name + "_buffer.csv");
  std::cout << "\npaper: 256 B per column hides the 18.8 ns supply latency even at\n"
            << "100% single-column drain.\n";
  return 0;
}
