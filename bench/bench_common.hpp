// Shared scaffolding for the per-figure bench binaries: every bench
// prints the paper's rows as an aligned table, mirrors them into
// `<bench-name>.csv` in the working directory, and accepts
//   --scale {tiny,small,medium,large}   suite size (default medium)
//   --k <int>                           dense columns K (default 64)
//   --matrix <path.mtx>                 run a real Matrix Market file too
//   --jobs <int>                        suite-runner thread pool size
//                                       (default hardware concurrency)
#pragma once

#include <iostream>
#include <string>

#include "core/spmm_engine.hpp"
#include "formats/matrix_market.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace nmdt::bench {

struct BenchEnv {
  std::string name;
  CliParser cli;
  SuiteScale scale = SuiteScale::kMedium;
  index_t K = 64;
  std::string matrix_path;
  /// Suite-runner thread pool size; <= 0 means hardware concurrency.
  int jobs = 0;

  BenchEnv(std::string bench_name, int argc, const char* const* argv)
      : name(std::move(bench_name)), cli(argc, argv) {
    cli.declare("scale", "suite scale: tiny | small | medium | large (default medium)");
    cli.declare("k", "number of dense B columns (default 64)");
    cli.declare("matrix", "optional Matrix Market file to include");
    cli.declare("jobs", "suite-runner threads (default: hardware concurrency)");
    if (cli.has("help")) {
      std::cout << cli.help(name) << std::flush;
      std::exit(0);
    }
    cli.validate();
    const std::string s = cli.get("scale", "medium");
    if (s == "tiny") scale = SuiteScale::kTiny;
    else if (s == "small") scale = SuiteScale::kSmall;
    else if (s == "medium") scale = SuiteScale::kMedium;
    else if (s == "large") scale = SuiteScale::kLarge;
    else throw ParseError("unknown --scale value: " + s);
    K = static_cast<index_t>(cli.get_int("k", 64));
    matrix_path = cli.get("matrix", "");
    jobs = static_cast<int>(cli.get_int("jobs", 0));
  }

  std::vector<MatrixSpec> suite() const { return standard_suite(scale); }

  /// Optional user-supplied real matrix (empty optional when --matrix
  /// was not passed).
  std::optional<Csr> user_matrix() const {
    if (matrix_path.empty()) return std::nullopt;
    Coo coo = read_matrix_market_file(matrix_path);
    Rng rng(42);
    bool pattern = true;
    for (value_t v : coo.val) {
      if (v != 1.0f) pattern = false;
    }
    if (pattern) randomize_values(coo, rng);  // paper Sec. 5.1
    return csr_from_coo(coo);
  }

  void emit(const Table& table) const {
    table.print(std::cout);
    const std::string csv = name + ".csv";
    table.write_csv(csv);
    std::cout << "\n[" << name << "] wrote " << csv << "\n\n";
  }
};

/// Header line every bench prints first.
inline void banner(const std::string& name, const std::string& what) {
  std::cout << "==== " << name << " — " << what << " ====\n\n";
}

}  // namespace nmdt::bench
