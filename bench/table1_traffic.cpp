// Table 1 — compulsory memory traffic of A-/B-/C-stationary tiling.
// Prints the analytical model (measured-profile and closed-form uniform
// variants) next to the traffic the instrumented kernels actually
// generated in counting mode, per operand.
#include "bench_common.hpp"

#include "analysis/traffic_model.hpp"
#include "matgen/generators.hpp"

using namespace nmdt;

int main(int argc, char** argv) {
  bench::BenchEnv env("table1_traffic", argc, argv);
  bench::banner(env.name, "compulsory traffic: analytical model vs simulated kernels");

  const index_t n = 4096;
  const double d = 0.002;
  const index_t K = env.K;
  const TilingSpec spec{64, 64};
  const Csr A = gen_uniform(n, n, d, 0x7ab1e1);
  const MatrixProfile profile = profile_matrix(A, spec);
  Rng rng(1);
  DenseMatrix B(A.cols, K);
  B.randomize(rng);
  SpmmConfig cfg;  // counting mode: compulsory traffic, matching the model
  cfg.tiling = spec;

  const struct {
    Strategy strategy;
    KernelKind kernel;
  } rows[] = {
      {Strategy::kAStationary, KernelKind::kAStationary},
      {Strategy::kBStationary, KernelKind::kTiledDcsrBStationary},
      {Strategy::kCStationary, KernelKind::kCsrCStationaryRowWarp},
  };

  std::cout << "uniform matrix: n=" << n << " density=" << format_sci(d)
            << " nnz=" << A.nnz() << " K=" << K << "\n\n";

  Table table({"strategy", "model_A_MB", "sim_A_MB", "model_B_MB", "sim_B_MB",
               "model_C_MB", "sim_C_MB", "model_total_MB", "closed_form_MB",
               "sim_total_MB", "sim/model"});
  for (const auto& row : rows) {
    const TrafficEstimate est = estimate_traffic(profile, row.strategy, K, spec);
    const TrafficEstimate closed = estimate_traffic_uniform(n, d, row.strategy, K, spec);
    const SpmmResult sim = run_spmm(row.kernel, A, B, cfg);
    const double sim_total = static_cast<double>(sim.mem.total_dram_bytes());
    auto operand = [&](const char* tag) {
      const auto it = sim.mem.operand_bytes.find(tag);
      return it == sim.mem.operand_bytes.end() ? 0.0 : static_cast<double>(it->second);
    };
    table.begin_row()
        .cell(strategy_name(row.strategy))
        .cell(est.a_bytes / 1e6, 2)
        .cell(operand("A") / 1e6, 2)
        .cell(est.b_bytes / 1e6, 2)
        .cell(operand("B") / 1e6, 2)
        .cell(est.c_bytes / 1e6, 2)
        .cell(operand("C") / 1e6, 2)
        .cell(est.total() / 1e6, 2)
        .cell(closed.total() / 1e6, 2)
        .cell(sim_total / 1e6, 2)
        .cell(sim_total / est.total(), 2);
  }
  env.emit(table);

  // Ordering claims of Sec. 3.1.2.
  const auto a_est = estimate_traffic(profile, Strategy::kAStationary, K, spec);
  const auto b_est = estimate_traffic(profile, Strategy::kBStationary, K, spec);
  const auto c_est = estimate_traffic(profile, Strategy::kCStationary, K, spec);
  std::cout << "A-stationary fetches B per non-zero (largest traffic): "
            << (a_est.total() >= b_est.total() ? "confirmed" : "NOT confirmed") << "\n"
            << "Uniform distribution favours C-stationary over B-stationary: "
            << (c_est.total() <= b_est.total() ? "confirmed" : "NOT confirmed") << "\n";
  return 0;
}
