// Fig. 7 — thread-execution breakdown (Integer / Control-Flow /
// Inactive) for tiled CSR vs tiled DCSR B-stationary kernels.  The
// paper observes ~90 % reduction of inactive thread executions after
// introducing DCSR (empty tile rows stop leaving 31 of 32 lanes idle).
#include "bench_common.hpp"

using namespace nmdt;

namespace {

struct Breakdown {
  double integer_pct = 0, control_pct = 0, inactive_pct = 0;
  u64 inactive_slots = 0;
};

Breakdown breakdown_of(const KernelCounters& c) {
  // NVPROF-style per-lane execution accounting: active lane slots split
  // by instruction class (proportional to issue counts), inactive slots
  // counted directly.
  const double total = static_cast<double>(c.total_lane_slots());
  const double active = static_cast<double>(c.lane_slots_active);
  const double instr = static_cast<double>(c.total_instr());
  Breakdown b;
  if (total == 0 || instr == 0) return b;
  b.integer_pct = 100.0 * active * static_cast<double>(c.int_instr + c.memory_instr +
                                                       c.fp_instr) / instr / total;
  b.control_pct = 100.0 * active * static_cast<double>(c.control_instr) / instr / total;
  b.inactive_pct = 100.0 * static_cast<double>(c.lane_slots_inactive) / total;
  b.inactive_slots = c.lane_slots_inactive;
  return b;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchEnv env("fig07_inactive_threads", argc, argv);
  bench::banner(env.name,
                "inactive thread executions: tiled CSR vs tiled DCSR (paper: ~90% cut)");

  KernelCounters csr_total, dcsr_total;
  Rng rng(0xf16007);
  const SpmmConfig cfg = evaluation_config(4096, env.K);

  for (const auto& spec : env.suite()) {
    const Csr A = spec.generate();
    if (A.nnz() == 0) continue;
    DenseMatrix B(A.cols, env.K);
    B.randomize(rng);
    csr_total += run_spmm(KernelKind::kTiledCsrBStationary, A, B, cfg).counters;
    dcsr_total += run_spmm(KernelKind::kTiledDcsrBStationary, A, B, cfg).counters;
  }

  const Breakdown csr = breakdown_of(csr_total);
  const Breakdown dcsr = breakdown_of(dcsr_total);

  Table table({"kernel", "integer+mem+fp_%", "control_flow_%", "inactive_%",
               "inactive_slots"});
  table.begin_row()
      .cell("Tiled CSR")
      .cell(csr.integer_pct, 1)
      .cell(csr.control_pct, 1)
      .cell(csr.inactive_pct, 1)
      .cell(csr.inactive_slots);
  table.begin_row()
      .cell("Tiled DCSR")
      .cell(dcsr.integer_pct, 1)
      .cell(dcsr.control_pct, 1)
      .cell(dcsr.inactive_pct, 1)
      .cell(dcsr.inactive_slots);
  env.emit(table);

  const double reduction =
      100.0 * (1.0 - static_cast<double>(dcsr.inactive_slots) /
                         static_cast<double>(csr.inactive_slots));
  std::cout << "inactive thread executions reduced by "
            << format_double(reduction, 1) << "% (paper: ~90%)\n";
  return 0;
}
