// Fig. 5 — histogram of the non-zero-row density of 64-wide vertical
// strips of A across the suite.  The paper's observation: the vast
// majority of strips have <1 % non-empty rows (~99 % of rows in a strip
// are all zeros), which is what makes per-tile CSR row pointers
// redundant and motivates DCSR.
#include "bench_common.hpp"

#include "formats/tiling.hpp"

using namespace nmdt;

int main(int argc, char** argv) {
  bench::BenchEnv env("fig05_strip_density", argc, argv);
  bench::banner(env.name, "density of vertical strips of A (paper: most strips <1%)");

  // Paper bins: 0-1%, 1-2%, ..., 9-10%, 10-20%, ..., >50%.
  const double edges[] = {0,    0.01, 0.02, 0.03, 0.04, 0.05, 0.06, 0.07, 0.08,
                          0.09, 0.10, 0.20, 0.30, 0.40, 0.50, 1.0001};
  constexpr int kBins = 15;
  i64 counts[kBins] = {};
  i64 total = 0;
  double weighted_sum = 0.0;

  auto add_matrix = [&](const Csr& A) {
    for (double frac : strip_nonzero_row_density(A, 64)) {
      for (int b = 0; b < kBins; ++b) {
        if (frac >= edges[b] && frac < edges[b + 1]) {
          ++counts[b];
          break;
        }
      }
      ++total;
      weighted_sum += frac;
    }
  };

  for (const auto& spec : env.suite()) add_matrix(spec.generate());
  if (auto user = env.user_matrix()) add_matrix(*user);

  Table table({"%non-zero rows in strip", "strips", "share_%"});
  const char* labels[kBins] = {"0-1",   "1-2",   "2-3",   "3-4",  "4-5",
                               "5-6",   "6-7",   "7-8",   "8-9",  "9-10",
                               "10-20", "20-30", "30-40", "40-50", ">50"};
  for (int b = 0; b < kBins; ++b) {
    table.begin_row()
        .cell(labels[b])
        .cell(counts[b])
        .cell(100.0 * static_cast<double>(counts[b]) / static_cast<double>(total), 1);
  }
  env.emit(table);
  std::cout << "strips total: " << total << "; mean non-zero-row fraction: "
            << format_double(100.0 * weighted_sum / static_cast<double>(total), 2)
            << "% (paper: ~1%, i.e. ~99% of rows in a strip are empty)\n";
  return 0;
}
