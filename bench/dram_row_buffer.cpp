// DRAM row-buffer locality ablation (model extension): the paper's
// "storage/bandwidth-optimized format" argument has a second-order
// effect the flat bandwidth model hides — the engine's CSC column walks
// are sequential and row-buffer friendly, while SM-side scattered B-row
// chasing pays activate penalties.  This bench quantifies per-kernel
// row-hit rates and the resulting effective-bandwidth derating.
#include "bench_common.hpp"

#include "matgen/generators.hpp"

using namespace nmdt;

int main(int argc, char** argv) {
  bench::BenchEnv env("dram_row_buffer", argc, argv);
  bench::banner(env.name, "row-buffer hit rates and effective bandwidth per kernel");

  Table table({"matrix", "kernel", "row_hit_rate", "dram_MB", "busy_vs_transfer",
               "total_us"});
  Rng rng(0xd7a);
  for (const auto& [label, A] :
       {std::pair<const char*, Csr>{"uniform", gen_uniform(4096, 4096, 0.002, 71)},
        std::pair<const char*, Csr>{"powerlaw_rows",
                                    gen_powerlaw_rows(4096, 4096, 0.002, 1.4, 72)},
        std::pair<const char*, Csr>{"banded", gen_banded(4096, 64, 0.15, 73)}}) {
    DenseMatrix B(A.cols, env.K);
    B.randomize(rng);
    const SpmmConfig cfg = evaluation_config(A.rows, env.K);
    for (KernelKind kind :
         {KernelKind::kCsrCStationaryRowWarp, KernelKind::kDcsrCStationary,
          KernelKind::kTiledDcsrBStationary, KernelKind::kTiledDcsrOnline}) {
      const SpmmResult r = run_spmm(kind, A, B, cfg);
      // Busy/transfer ratio on the hottest channel = effective
      // bandwidth derating from row misses.
      const double transfer =
          static_cast<double>(r.mem.max_channel_bytes()) / cfg.arch.bw_per_channel_gbps;
      const double busy = r.mem.max_channel_service_ns(cfg.arch.bw_per_channel_gbps);
      table.begin_row()
          .cell(label)
          .cell(kernel_name(kind))
          .cell(r.mem.dram_row_hit_rate(), 3)
          .cell(static_cast<double>(r.mem.total_dram_bytes()) / 1e6, 1)
          .cell(transfer > 0 ? busy / transfer : 1.0, 2)
          .cell(r.timing.total_ns * 1e-3, 1);
    }
  }
  env.emit(table);
  std::cout << "busy_vs_transfer > 1 is the activate-penalty derating; the online\n"
            << "kernel's engine streams keep its hit rate highest.\n";
  return 0;
}
