// Fig. 9 — storage overhead of tiled DCSR relative to the original
// (untiled) CSR, per matrix, sorted.  The paper: ~1.3-1.4x on average,
// ~2x max, except a few tall-skinny matrices; metadata-only overhead is
// higher than metadata+data.
#include <algorithm>

#include "bench_common.hpp"

#include "formats/footprint.hpp"

using namespace nmdt;

int main(int argc, char** argv) {
  bench::BenchEnv env("fig09_tiling_overhead", argc, argv);
  bench::banner(env.name, "size(tiled DCSR) / size(CSR) (paper: avg 1.3-1.4x, max ~2x)");

  struct Row {
    std::string name;
    double meta_ratio, total_ratio;
  };
  std::vector<Row> rows;
  const TilingSpec spec{64, 64};

  auto add = [&](const std::string& name, const Csr& A) {
    if (A.nnz() == 0) return;
    const Footprint fcsr = footprint(A);
    const Footprint ftiled = footprint(tiled_dcsr_from_csr(A, spec));
    rows.push_back({name,
                    static_cast<double>(ftiled.metadata_bytes) / fcsr.metadata_bytes,
                    static_cast<double>(ftiled.total()) / fcsr.total()});
  };
  for (const auto& spec_it : env.suite()) add(spec_it.name, spec_it.generate());
  if (auto user = env.user_matrix()) add("user:" + env.matrix_path, *user);

  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.total_ratio < b.total_ratio; });

  Table table({"matrix#", "matrix", "metadata_ratio", "metadata+data_ratio"});
  std::vector<double> meta, total;
  for (usize i = 0; i < rows.size(); ++i) {
    table.begin_row()
        .cell(static_cast<i64>(i))
        .cell(rows[i].name)
        .cell(rows[i].meta_ratio, 3)
        .cell(rows[i].total_ratio, 3);
    meta.push_back(rows[i].meta_ratio);
    total.push_back(rows[i].total_ratio);
  }
  env.emit(table);

  std::cout << "metadata+data overhead: mean " << format_double(mean(total), 2)
            << "x, median " << format_double(median(total), 2) << "x, max "
            << format_double(percentile(total, 100), 2)
            << "x  (paper: 1.3-1.4x avg, <=2x except tall-skinny)\n"
            << "metadata-only overhead: mean " << format_double(mean(meta), 2)
            << "x (higher than total, as in the paper)\n";
  return 0;
}
