// Fig. 4 — performance ratio t_C-stationary / t_B-stationary vs the SSF
// value, and the learned threshold SSF_th.  The paper reports >93 % of
// matrices classified to the optimal algorithm.  The CSV holds one dot
// per matrix (the Fig. 4 scatter); the table summarizes the learned
// threshold and accuracies (strict, and with a ±10 % tie band — points
// whose two arms are within 10 % are equally served by either choice).
#include "bench_common.hpp"

#include "util/ascii_plot.hpp"

using namespace nmdt;

int main(int argc, char** argv) {
  bench::BenchEnv env("fig04_ssf_heuristic", argc, argv);
  bench::banner(env.name, "SSF heuristic training (paper: >93% classified optimally)");

  const SpmmConfig cfg = evaluation_config(4096, env.K);
  const auto rows = run_suite(env.suite(), cfg, env.K, {}, env.jobs);

  Table dots({"matrix", "ssf", "ratio_tC_over_tB", "h_norm", "nnz", "density"});
  for (const auto& r : rows) {
    dots.begin_row()
        .cell(r.spec.name)
        .cell(format_sci(r.profile.ssf))
        .cell(r.ratio_c_over_b(), 4)
        .cell(r.profile.h_norm, 4)
        .cell(r.profile.stats.nnz)
        .cell(format_sci(r.profile.stats.density));
  }
  env.emit(dots);

  const SsfThreshold learned = train_threshold(rows);

  // The Fig. 4 scatter: y > 1 means B-stationary is faster.
  AsciiScatter plot;
  plot.set_labels("SSF value", "t_C-stationary / t_B-stationary");
  plot.add_hline(1.0);
  for (const auto& r : rows) {
    plot.add(std::max(r.profile.ssf, 1e-16), r.ratio_c_over_b(), '*');
  }
  plot.render(std::cout);
  std::cout << "(learned threshold at SSF = " << format_sci(learned.threshold)
            << "; dots right of it should sit above the y=1 rule)\n\n";

  // Tie-tolerant accuracy: a matrix whose two arms differ by <10% is
  // optimally served either way.
  i64 correct_tol = 0;
  for (const auto& r : rows) {
    const bool pred_b = r.profile.ssf > learned.threshold;
    const bool b_wins = r.ratio_c_over_b() > 1.0;
    if (pred_b == b_wins || std::abs(r.ratio_c_over_b() - 1.0) <= 0.10) ++correct_tol;
  }

  Table summary({"quantity", "value", "paper"});
  summary.begin_row().cell("matrices").cell(static_cast<i64>(rows.size())).cell("~4000");
  summary.begin_row().cell("learned SSF_th").cell(format_sci(learned.threshold)).cell("-");
  summary.begin_row()
      .cell("strict accuracy")
      .cell(learned.accuracy, 3)
      .cell(">0.93");
  summary.begin_row()
      .cell("accuracy (10% tie band)")
      .cell(static_cast<double>(correct_tol) / static_cast<double>(rows.size()), 3)
      .cell(">0.93");
  summary.begin_row()
      .cell("misclassified")
      .cell(learned.misclassified)
      .cell("small (Fig. 4 off-quadrant dots)");
  summary.print(std::cout);
  summary.write_csv(env.name + "_summary.csv");
  std::cout << "\nShipped default threshold (EngineOptions): "
            << format_sci(EngineOptions::default_ssf_threshold()) << "\n";
  return 0;
}
