// Sec. 7 related-work comparison: the Hong et al. [12] offline hybrid
// (heavy segments → tiled DCSR B-stationary; light remainder → CSR
// C-stationary) against this paper's online approach.  Quantifies the
// paper's two critiques: B rows touched by both parts are fetched in
// both phases, and the split+tiling preprocessing often rivals the
// kernel time itself.
#include "bench_common.hpp"

#include "matgen/generators.hpp"

using namespace nmdt;

int main(int argc, char** argv) {
  bench::BenchEnv env("related_hong_hybrid", argc, argv);
  bench::banner(env.name, "Hong et al. hybrid vs online near-memory conversion (Sec. 7)");

  Table table({"matrix", "kernel", "kernel_us", "prep_us", "kernel+prep_us", "dram_MB",
               "speedup_vs_hong_incl_prep"});
  Rng rng(0x12);
  for (const auto& [label, A] : {
           std::pair<const char*, Csr>{"clustered",
                                       gen_block_clustered(4096, 16, 0.05, 1e-4, 81)},
           std::pair<const char*, Csr>{"banded", gen_banded(4096, 64, 0.15, 82)},
           std::pair<const char*, Csr>{"powerlaw_rows",
                                       gen_powerlaw_rows(4096, 4096, 0.002, 1.4, 83)},
           std::pair<const char*, Csr>{"uniform", gen_uniform(4096, 4096, 0.002, 84)},
       }) {
    DenseMatrix B(A.cols, env.K);
    B.randomize(rng);
    const SpmmConfig cfg = evaluation_config(A.rows, env.K);
    const SpmmResult hong = run_spmm(KernelKind::kHongHybrid, A, B, cfg);
    const SpmmResult online = run_spmm(KernelKind::kTiledDcsrOnline, A, B, cfg);
    const double hong_total = hong.timing.total_ns + hong.offline_prep_ns;
    for (const auto& [name, r, include_prep] :
         {std::tuple<const char*, const SpmmResult*, bool>{"hong_hybrid", &hong, true},
          std::tuple<const char*, const SpmmResult*, bool>{"tiled_dcsr_online", &online,
                                                           false}}) {
      const double total = r->timing.total_ns + (include_prep ? r->offline_prep_ns : 0.0);
      table.begin_row()
          .cell(label)
          .cell(name)
          .cell(r->timing.total_ns * 1e-3, 1)
          .cell((include_prep ? r->offline_prep_ns : 0.0) * 1e-3, 1)
          .cell(total * 1e-3, 1)
          .cell(static_cast<double>(r->mem.total_dram_bytes()) / 1e6, 1)
          .cell(hong_total / total, 2);
    }
  }
  env.emit(table);
  std::cout << "hong_hybrid pays the split/tiling preprocessing every time the\n"
            << "matrix changes and re-reads overlapping B rows across its two\n"
            << "phases; the online engine does neither (paper Sec. 7).\n";
  return 0;
}
