// Fig. 2 — Stall reasons of SpMM (the paper's NVPROF pie: Memory 75.1%,
// SM 23.3%, Other 1.5%).  Runs the baseline untiled-CSR kernel over the
// suite on the evaluation configuration and reports the average stall
// attribution.
#include "bench_common.hpp"

using namespace nmdt;

int main(int argc, char** argv) {
  bench::BenchEnv env("fig02_stall_reasons", argc, argv);
  bench::banner(env.name, "stall reasons of baseline CSR SpMM (paper: 75.1/23.3/1.5)");

  std::vector<double> mem_frac, sm_frac, other_frac;
  Table table({"matrix", "total_us", "memory_%", "sm_%", "other_%"});
  Rng rng(0xf16002);

  auto run_one = [&](const std::string& label, const Csr& A) {
    DenseMatrix B(A.cols, env.K);
    B.randomize(rng);
    const SpmmConfig cfg = evaluation_config(A.rows, env.K);
    const SpmmResult r = run_spmm(KernelKind::kCsrCStationaryRowWarp, A, B, cfg);
    // Average over matrices with enough work to fill the GPU; tiny
    // grids are launch-bound, which is why the paper's dataset filters
    // out matrices under 4k rows (Sec. 5.1).
    if (r.timing.total_ns > 20.0 * cfg.arch.launch_overhead_ns) {
      mem_frac.push_back(r.timing.frac_memory * 100.0);
      sm_frac.push_back(r.timing.frac_sm * 100.0);
      other_frac.push_back(r.timing.frac_other * 100.0);
    }
    table.begin_row()
        .cell(label)
        .cell(r.timing.total_ns * 1e-3, 1)
        .cell(r.timing.frac_memory * 100.0, 1)
        .cell(r.timing.frac_sm * 100.0, 1)
        .cell(r.timing.frac_other * 100.0, 1);
  };

  for (const auto& spec : env.suite()) {
    const Csr A = spec.generate();
    if (A.nnz() == 0) continue;
    run_one(spec.name, A);
  }
  if (auto user = env.user_matrix()) run_one("user:" + env.matrix_path, *user);

  table.begin_row()
      .cell("AVERAGE (paper: 75.1 / 23.3 / 1.5)")
      .cell("")
      .cell(mean(mem_frac), 1)
      .cell(mean(sm_frac), 1)
      .cell(mean(other_frac), 1);
  env.emit(table);
  return 0;
}
