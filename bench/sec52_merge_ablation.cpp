// Sec. 5.2 ablation — the row-skew critical path and the merge-based
// fix the paper points at (Merrill & Garland [21]).
//
// On matrices with heavy rows, row-per-warp kernels serialize the
// heaviest row in one warp; merge-based decomposition bounds every
// warp's span, collapsing the critical path at the cost of a few atomic
// fixups.  The paper calls this orthogonal to its proposal — this bench
// shows it composing: merge-based fixes the C arm; tiling already
// bounds chains in the B arm.
#include "bench_common.hpp"

#include "matgen/generators.hpp"

using namespace nmdt;

int main(int argc, char** argv) {
  bench::BenchEnv env("sec52_merge_ablation", argc, argv);
  bench::banner(env.name, "row-skew critical path vs merge-based decomposition");

  Table table({"matrix", "kernel", "max_chain", "latency_us", "total_us", "atomics",
               "speedup_vs_rowwarp"});
  Rng rng(0x52);

  for (const auto& [label, A] : {
           std::pair<const char*, Csr>{"mild skew (zipf 1.0)",
                                       gen_powerlaw_rows(4096, 4096, 0.002, 1.0, 51)},
           std::pair<const char*, Csr>{"heavy skew (zipf 1.6)",
                                       gen_powerlaw_rows(4096, 4096, 0.002, 1.6, 52)},
           std::pair<const char*, Csr>{"extreme skew (zipf 2.2)",
                                       gen_powerlaw_rows(4096, 4096, 0.002, 2.2, 53)},
       }) {
    DenseMatrix B(A.cols, env.K);
    B.randomize(rng);
    const SpmmConfig cfg = evaluation_config(A.rows, env.K);
    double rowwarp_ns = 0.0;
    for (KernelKind kind : {KernelKind::kDcsrCStationary, KernelKind::kMergeCStationary,
                            KernelKind::kTiledDcsrOnline}) {
      const SpmmResult r = run_spmm(kind, A, B, cfg);
      if (kind == KernelKind::kDcsrCStationary) rowwarp_ns = r.timing.total_ns;
      table.begin_row()
          .cell(label)
          .cell(kernel_name(kind))
          .cell(static_cast<i64>(r.counters.max_chain_iters))
          .cell(r.timing.latency_ns * 1e-3, 2)
          .cell(r.timing.total_ns * 1e-3, 1)
          .cell(static_cast<i64>(r.counters.atomic_updates))
          .cell(rowwarp_ns / r.timing.total_ns, 2);
    }
  }
  env.emit(table);
  std::cout << "merge-based bounds max_chain at merge_chunk; under heavy skew it\n"
            << "recovers the critical-path loss of row-per-warp C-stationary while\n"
            << "the online B-stationary arm is already chain-bounded by tiling.\n";
  return 0;
}
