// Sec. 6.2 / Fig. 18 — large-scale SpMM on multi-GPU systems: dense B/C
// exceed GPU memory (the paper's 2M×2M ⇒ ~17 TB example) and are
// streamed as vertical strips while the space-efficient sparse A is
// replicated.  Shows the chunking plan, transfer/compute overlap, and
// the capacity advantage of replicating compact CSC instead of
// pre-tiled DCSR (~1.4x larger, Fig. 9).
#include "bench_common.hpp"

#include "sched/multigpu.hpp"
#include "sched/stream_sim.hpp"

using namespace nmdt;

int main(int argc, char** argv) {
  bench::BenchEnv env("sec62_multigpu", argc, argv);
  bench::banner(env.name, "multi-GPU streaming SpMM plans (Sec. 6.2)");

  MultiGpuConfig cfg;

  Table plans({"n", "K", "gpus", "A_format", "A_GB", "B_per_gpu_GB", "chunks",
               "transfer_ms", "compute_ms", "total_ms", "overlap_eff"});
  for (const i64 n : {i64{500'000}, i64{2'000'000}}) {
    const double density = 1e-5;
    MatrixStats s;
    s.rows = static_cast<index_t>(n);
    s.cols = static_cast<index_t>(n);
    s.nnz = static_cast<i64>(density * static_cast<double>(n) * static_cast<double>(n));
    s.density = density;
    const index_t K = static_cast<index_t>(n);  // square dense B, as in the paper
    for (int gpus : {1, 4, 16}) {
      cfg.gpus = gpus;
      const i64 csc_bytes = csr_bytes(s.rows, s.nnz);
      const i64 tiled_bytes = static_cast<i64>(static_cast<double>(csc_bytes) * 1.4);
      for (const auto& [fmt, a_bytes] :
           {std::pair<const char*, i64>{"CSC (online)", csc_bytes},
            std::pair<const char*, i64>{"tiled DCSR (offline)", tiled_bytes}}) {
        const MultiGpuPlan p = plan_multi_gpu(s, K, a_bytes, cfg);
        plans.begin_row()
            .cell(n)
            .cell(i64{K})
            .cell(i64{gpus})
            .cell(fmt)
            .cell(static_cast<double>(a_bytes) / 1e9, 2)
            .cell(static_cast<double>(p.b_bytes_per_gpu) / 1e9, 1)
            .cell(p.num_chunks)
            .cell(p.transfer_ns * 1e-6, 0)
            .cell(p.compute_ns * 1e-6, 0)
            .cell(p.total_ns * 1e-6, 0)
            .cell(p.overlap_efficiency, 3);
      }
    }
  }
  env.emit(plans);

  // Event-level validation of the overlap claim: replay the 4-GPU CSC
  // plan's chunks through the stream simulator at several staging-buffer
  // depths (double buffering recovers the analytic bound; one buffer
  // serializes).
  {
    MatrixStats s;
    s.rows = 2'000'000;
    s.cols = 2'000'000;
    s.nnz = static_cast<i64>(1e-5 * 2e6 * 2e6);
    cfg.gpus = 4;
    const MultiGpuPlan plan =
        plan_multi_gpu(s, 2'000'000, csr_bytes(s.rows, s.nnz), cfg);
    const auto chunks = chunks_from_plan(plan);
    Table sim({"staging_buffers", "simulated_total_ms", "analytic_total_ms",
               "overlap_efficiency", "compute_stall_ms"});
    for (int buffers : {1, 2, 3}) {
      const StreamTimeline t = simulate_stream(chunks, buffers);
      sim.begin_row()
          .cell(i64{buffers})
          .cell(t.total_ns * 1e-6, 1)
          .cell(plan.total_ns * 1e-6, 1)
          .cell(t.overlap_efficiency, 3)
          .cell(t.compute_stall_ns * 1e-6, 1);
    }
    sim.print(std::cout);
    sim.write_csv(env.name + "_stream.csv");
    std::cout << "\n";
  }

  std::cout << "2M x 2M dense B is "
            << format_bytes(4.0 * 2e6 * 2e6)
            << " — cannot fit in 16 GB GPU memory (paper's ~17 TB example);\n"
            << "streaming + overlap keeps the GPUs busy, and the compact CSC format\n"
            << "leaves more chunk capacity than pre-tiled DCSR (fewer A re-reads).\n";
  return 0;
}
