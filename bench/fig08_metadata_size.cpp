// Fig. 8 — metadata storage of tiled CSR normalized to tiled DCSR per
// matrix, sorted ascending (the paper's x-axis is the matrix rank).
// Tiled DCSR is commonly orders of magnitude smaller in metadata; a few
// matrices with many non-zero row segments are exceptions.
#include <algorithm>

#include "bench_common.hpp"

#include "formats/footprint.hpp"

using namespace nmdt;

int main(int argc, char** argv) {
  bench::BenchEnv env("fig08_metadata_size", argc, argv);
  bench::banner(env.name,
                "size(tiled CSR) / size(tiled DCSR), metadata and total (Fig. 8)");

  struct Row {
    std::string name;
    double meta_ratio, total_ratio;
  };
  std::vector<Row> rows;
  const TilingSpec spec{64, 64};

  auto add = [&](const std::string& name, const Csr& A) {
    if (A.nnz() == 0) return;
    const Footprint fcsr = footprint(tiled_csr_from_csr(A, spec));
    const Footprint fdcsr = footprint(tiled_dcsr_from_csr(A, spec));
    rows.push_back({name,
                    static_cast<double>(fcsr.metadata_bytes) / fdcsr.metadata_bytes,
                    static_cast<double>(fcsr.total()) / fdcsr.total()});
  };
  for (const auto& spec_it : env.suite()) add(spec_it.name, spec_it.generate());
  if (auto user = env.user_matrix()) add("user:" + env.matrix_path, *user);

  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.meta_ratio < b.meta_ratio; });

  Table table({"matrix#", "matrix", "metadata_ratio", "metadata+data_ratio"});
  std::vector<double> meta, total;
  for (usize i = 0; i < rows.size(); ++i) {
    table.begin_row()
        .cell(static_cast<i64>(i))
        .cell(rows[i].name)
        .cell(rows[i].meta_ratio, 2)
        .cell(rows[i].total_ratio, 2);
    meta.push_back(rows[i].meta_ratio);
    total.push_back(rows[i].total_ratio);
  }
  env.emit(table);

  std::cout << "metadata ratio: median " << format_double(median(meta), 1) << "x, p90 "
            << format_double(percentile(meta, 90), 1) << "x, max "
            << format_double(percentile(meta, 100), 1)
            << "x  (paper: commonly 10-1000x)\n"
            << "fraction of matrices where tiled DCSR metadata is smaller: "
            << format_double(100.0 * fraction_above(meta, 1.0), 1) << "%\n";
  return 0;
}
