// Energy ablation (extends Sec. 5.3's "the speedup more than amortizes
// the added power"): whole-kernel energy of the baseline, the two arms,
// and the offline-tiled alternative — showing that the engine's
// conversion energy is orders of magnitude below the DRAM energy its
// traffic savings buy, and that static (runtime) energy follows the
// speedup.
#include "bench_common.hpp"

#include "gpusim/energy.hpp"
#include "matgen/generators.hpp"

using namespace nmdt;

int main(int argc, char** argv) {
  bench::BenchEnv env("energy_ablation", argc, argv);
  bench::banner(env.name, "whole-kernel energy: DRAM vs engine vs static");

  const EnergyModel model;
  Table table({"matrix", "kernel", "dram_uJ", "l2_uJ", "core_uJ", "engine_uJ",
               "static_uJ", "total_uJ", "vs_baseline"});
  Rng rng(0xe1);

  for (const auto& [label, A] :
       {std::pair<const char*, Csr>{"banded", gen_banded(4096, 64, 0.15, 61)},
        std::pair<const char*, Csr>{"powerlaw_rows",
                                    gen_powerlaw_rows(4096, 4096, 0.002, 1.6, 62)},
        std::pair<const char*, Csr>{"uniform", gen_uniform(4096, 4096, 0.002, 63)}}) {
    DenseMatrix B(A.cols, env.K);
    B.randomize(rng);
    const SpmmConfig cfg = evaluation_config(A.rows, env.K);
    double baseline_uj = 0.0;
    for (KernelKind kind :
         {KernelKind::kCsrCStationaryRowWarp, KernelKind::kDcsrCStationary,
          KernelKind::kTiledDcsrBStationary, KernelKind::kTiledDcsrOnline}) {
      const SpmmResult r = run_spmm(kind, A, B, cfg);
      const EnergyBreakdown e = estimate_energy(model, cfg.arch, r.counters, r.mem,
                                                r.engine.steps, r.timing);
      if (kind == KernelKind::kCsrCStationaryRowWarp) baseline_uj = e.total_uj();
      table.begin_row()
          .cell(label)
          .cell(kernel_name(kind))
          .cell(e.dram_uj, 1)
          .cell(e.l2_uj, 1)
          .cell(e.core_uj, 1)
          .cell(e.engine_uj, 3)
          .cell(e.static_uj, 1)
          .cell(e.total_uj(), 1)
          .cell(e.total_uj() / baseline_uj, 3);
    }
  }
  env.emit(table);
  std::cout << "engine_uJ is the added conversion energy (6.29 pJ/row, Sec. 5.3) —\n"
            << "negligible against the DRAM and static terms it reduces.\n";
  return 0;
}
