// Microbenchmarks (google-benchmark) for the transform engine: the
// comparator tree at various widths, full-strip conversion throughput
// (functional-model elements/s and the modelled hardware GB/s against
// the 13.6 GB/s pseudo-channel delivery target), and strip-cursor
// opening.
#include <benchmark/benchmark.h>

#include "formats/convert.hpp"
#include "matgen/generators.hpp"
#include "transform/comparator.hpp"
#include "transform/engine.hpp"

namespace nmdt {
namespace {

void BM_ComparatorTree(benchmark::State& state) {
  const int lanes = static_cast<int>(state.range(0));
  Rng rng(1);
  std::vector<index_t> coords(static_cast<usize>(lanes));
  std::vector<u8> valid(static_cast<usize>(lanes), 1);
  for (auto& c : coords) c = static_cast<index_t>(rng.below(1000));
  for (auto _ : state) {
    benchmark::DoNotOptimize(comparator_tree_min(coords, valid));
  }
  state.SetItemsProcessed(state.iterations() * lanes);
}
BENCHMARK(BM_ComparatorTree)->Arg(4)->Arg(16)->Arg(32)->Arg(64);

void BM_ConvertStrip(benchmark::State& state) {
  const double density = static_cast<double>(state.range(0)) / 10000.0;
  const Csr csr = gen_uniform(4096, 64, density, 7);
  const Csc csc = csc_from_csr(csr);
  const TilingSpec spec{64, 64};
  ConversionEngine engine;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.convert_strip(csc, 0, spec));
  }
  state.SetItemsProcessed(state.iterations() * csr.nnz());
  // Modelled hardware time for the same work vs the delivery target.
  const double hw_ns = engine.stats().busy_ns(engine.hw()) /
                       static_cast<double>(state.iterations());
  const double bytes = static_cast<double>(csr.nnz()) * 8.0;
  state.counters["model_GBps"] = bytes / hw_ns;  // should be <= 13.6
}
BENCHMARK(BM_ConvertStrip)->Arg(10)->Arg(100)->Arg(1000);

void BM_StripCursorOpen(benchmark::State& state) {
  const Csr csr = gen_uniform(4096, 4096, 0.001, 8);
  const Csc csc = csc_from_csr(csr);
  const TilingSpec spec{64, 64};
  index_t strip = 0;
  for (auto _ : state) {
    StripCursor cursor(csc, strip, spec);
    benchmark::DoNotOptimize(cursor.frontier().data());
    strip = (strip + 1) % spec.num_strips(csc.cols);
  }
}
BENCHMARK(BM_StripCursorOpen);

void BM_OfflineTiledDcsrBuild(benchmark::State& state) {
  // The preprocessing cost online conversion eliminates: host-side
  // offline tiling of a whole matrix.
  const Csr csr = gen_uniform(2048, 2048, 0.002, 9);
  const TilingSpec spec{64, 64};
  for (auto _ : state) {
    benchmark::DoNotOptimize(tiled_dcsr_from_csr(csr, spec));
  }
  state.SetItemsProcessed(state.iterations() * csr.nnz());
}
BENCHMARK(BM_OfflineTiledDcsrBuild);

}  // namespace
}  // namespace nmdt

BENCHMARK_MAIN();
