// Sec. 2 — the bytes/FLOP balance model: SpMM's arithmetic intensity is
// far below the machine balance of the modelled GPU, so it is memory
// bound.  Reproduces the paper's N = 20k, d = 0.1 % working point and
// sweeps the neighbourhood.
#include "bench_common.hpp"

#include "analysis/traffic_model.hpp"

using namespace nmdt;

int main(int argc, char** argv) {
  bench::BenchEnv env("sec2_bytes_per_flop", argc, argv);
  bench::banner(env.name, "bytes/FLOP model vs machine balance (Sec. 2)");

  const ArchConfig gv100 = ArchConfig::gv100();
  const double balance =
      machine_balance_bytes_per_flop(gv100.total_bandwidth_gbps(), gv100.peak_fp32_tflops);
  std::cout << "GV100 machine balance: " << format_double(balance, 4)
            << " bytes/FLOP (870 GB/s / 15.7 TFLOPs)\n\n";

  Table table({"N", "density", "nnz", "bytes/FLOP", "x_balance", "memory_bound"});
  for (index_t n : {4000, 20000, 44000}) {
    for (double d : {1e-4, 1e-3, 1e-2}) {
      const i64 nnz = static_cast<i64>(d * static_cast<double>(n) * n);
      const double bf = bytes_per_flop(n, nnz);
      table.begin_row()
          .cell(i64{n})
          .cell(format_sci(d))
          .cell(nnz)
          .cell(bf, 4)
          .cell(bf / balance, 1)
          .cell(bf > balance ? "yes" : "no");
    }
  }
  env.emit(table);

  std::cout << "Paper's working point (N=20k, 0.1% density): "
            << format_double(bytes_per_flop(20000, 400000), 3)
            << " bytes/FLOP under the Sec. 2 formula — "
            << format_double(bytes_per_flop(20000, 400000) / balance, 0)
            << "x above machine balance, i.e. firmly memory-bound.\n"
            << "(The paper quotes 5.1 bytes/FLOP for this point; the formula as\n"
            << "printed yields 0.2 — either way the memory-bound conclusion holds,\n"
            << "see EXPERIMENTS.md.)\n";
  return 0;
}
