// Sampling-based SSF estimation — the paper's future-work item
// ("parameters can be obtained through sampling to minimize profiling
// time", Sec. 3.1.4) implemented and evaluated: classification
// agreement between full-scan SSF and row-sampled SSF at several
// sampling fractions, plus the profiling-work reduction.
#include "bench_common.hpp"

#include <cmath>

#include "analysis/sampling.hpp"

using namespace nmdt;

int main(int argc, char** argv) {
  bench::BenchEnv env("ssf_sampling", argc, argv);
  bench::banner(env.name, "sampled vs full SSF profiling (paper future work)");

  const TilingSpec spec{64, 64};
  const double threshold = EngineOptions::default_ssf_threshold();
  const auto specs = env.suite();

  Table table({"sample_fraction", "classification_agreement_%",
               "median_log10_ssf_error", "profiling_work_reduction"});
  for (double p : {0.05, 0.1, 0.25, 0.5}) {
    i64 agree = 0, total = 0;
    std::vector<double> log_err;
    for (const auto& s : specs) {
      const Csr A = s.generate();
      if (A.nnz() < 2) continue;
      const MatrixProfile full = profile_matrix(A, spec);
      const SampledProfile sampled = profile_matrix_sampled(A, spec, p, 99);
      ++total;
      const bool full_b = full.ssf > threshold;
      const bool samp_b = sampled.profile.ssf > threshold;
      if (full_b == samp_b) ++agree;
      if (full.ssf > 0 && sampled.profile.ssf > 0) {
        log_err.push_back(std::abs(std::log10(sampled.profile.ssf / full.ssf)));
      }
    }
    table.begin_row()
        .cell(p, 2)
        .cell(100.0 * static_cast<double>(agree) / static_cast<double>(total), 1)
        .cell(median(log_err), 3)
        .cell(format_double(1.0 / p, 0) + "x fewer rows scanned");
  }
  env.emit(table);
  std::cout << "row sampling keeps SSF row segments intact (a segment is a\n"
            << "(strip,row) pair), so the estimate converges quickly; a 10% sample\n"
            << "classifies nearly as well as the full scan at 10x less work.\n";
  return 0;
}
