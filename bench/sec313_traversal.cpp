// Sec. 3.1.3 — B-tile traversal order: column-major (C partials stay
// LLC-hot across strips) vs row-major (A strip stays LLC-hot across B
// column blocks, entire C touched repeatedly).  The paper concludes
// column-major usually wins because A's footprint is much smaller than
// C's.  Needs K > 64 so there is more than one B column block.
#include "bench_common.hpp"

#include "matgen/generators.hpp"

using namespace nmdt;

int main(int argc, char** argv) {
  bench::BenchEnv env("sec313_traversal", argc, argv);
  bench::banner(env.name, "B-tile traversal order for B-stationary (Sec. 3.1.3)");

  const index_t K = std::max<index_t>(env.K, 256);  // several B column blocks
  Table table({"matrix", "kernel", "traversal", "total_us", "dram_MB", "l2_hit",
               "col/row_time_ratio"});
  Rng rng(0x313);

  for (const auto& [label, A] :
       {std::pair<const char*, Csr>{"banded", gen_banded(4096, 64, 0.15, 31)},
        std::pair<const char*, Csr>{"clustered",
                                    gen_block_clustered(4096, 16, 0.05, 1e-4, 32)},
        std::pair<const char*, Csr>{"uniform", gen_uniform(4096, 4096, 0.002, 33)}}) {
    DenseMatrix B(A.cols, K);
    B.randomize(rng);
    for (KernelKind kind :
         {KernelKind::kTiledDcsrBStationary, KernelKind::kTiledDcsrOnline}) {
      double col_time = 0.0;
      for (TraversalOrder order :
           {TraversalOrder::kColumnMajor, TraversalOrder::kRowMajor}) {
        SpmmConfig cfg = evaluation_config(A.rows, K);
        cfg.traversal = order;
        const SpmmResult r = run_spmm(kind, A, B, cfg);
        if (order == TraversalOrder::kColumnMajor) col_time = r.timing.total_ns;
        table.begin_row()
            .cell(label)
            .cell(kernel_name(kind))
            .cell(traversal_name(order))
            .cell(r.timing.total_ns * 1e-3, 1)
            .cell(static_cast<double>(r.mem.total_dram_bytes()) / 1e6, 1)
            .cell(r.mem.l2.hit_rate(), 3)
            .cell(order == TraversalOrder::kRowMajor ? col_time / r.timing.total_ns
                                                     : 1.0,
                  3);
      }
    }
  }
  env.emit(table);
  std::cout << "ratio < 1 means column-major is faster (the paper's usual case).\n";
  return 0;
}
