// Capstone comparison: every kernel in the library against the baseline
// across the whole suite — geomean speedup overall and per matrix
// family.  This is the bird's-eye view behind the paper's design story:
// no single kernel wins everywhere, which is exactly why the SSF
// heuristic (and the online engine that makes its B arm cheap) exists.
#include <map>

#include "bench_common.hpp"

using namespace nmdt;

int main(int argc, char** argv) {
  bench::BenchEnv env("kernel_league", argc, argv);
  bench::banner(env.name, "all kernels vs baseline across the suite");

  constexpr KernelKind kKernels[] = {
      KernelKind::kCsrCStationaryRowThread, KernelKind::kDcsrCStationary,
      KernelKind::kMergeCStationary,        KernelKind::kTiledCsrBStationary,
      KernelKind::kTiledDcsrBStationary,    KernelKind::kTiledDcsrOnline,
      KernelKind::kHongHybrid,              KernelKind::kAStationary,
  };

  const SpmmConfig cfg = evaluation_config(4096, env.K);
  // speedups[kernel][family] and [kernel]["ALL"]
  std::map<std::string, std::map<std::string, std::vector<double>>> speedups;
  std::map<std::string, std::vector<double>> win_counts;

  const auto specs = env.suite();
  usize done = 0;
  Rng rng(0x1ea);
  for (const auto& spec : specs) {
    const Csr A = spec.generate();
    if (A.nnz() == 0) continue;
    DenseMatrix B(A.cols, env.K);
    B.randomize(rng);
    const double t_base =
        run_spmm(KernelKind::kCsrCStationaryRowWarp, A, B, cfg).timing.total_ns;
    for (KernelKind kind : kKernels) {
      const double t = run_spmm(kind, A, B, cfg).timing.total_ns;
      speedups[kernel_name(kind)][family_name(spec.family)].push_back(t_base / t);
      speedups[kernel_name(kind)]["ALL"].push_back(t_base / t);
    }
    if (++done % 20 == 0) std::cout << "... " << done << "/" << specs.size() << "\n";
  }

  std::vector<std::string> families;
  for (const auto& [fam, v] : speedups[kernel_name(kKernels[0])]) {
    (void)v;
    if (fam != "ALL") families.push_back(fam);
  }
  std::vector<std::string> header{"kernel (geomean speedup)", "ALL"};
  header.insert(header.end(), families.begin(), families.end());
  Table table(header);
  for (KernelKind kind : kKernels) {
    auto& per = speedups[kernel_name(kind)];
    table.begin_row().cell(kernel_name(kind)).cell(geomean(per["ALL"]), 3);
    for (const auto& fam : families) table.cell(geomean(per[fam]), 3);
  }
  env.emit(table);

  std::cout << "baseline = csr_c_stationary_row_warp (1.0 by construction).\n"
            << "No column has a single dominant kernel — the per-matrix SSF\n"
            << "selection between dcsr_c_stationary and tiled_dcsr_online is the\n"
            << "paper's answer (fig16_speedup).\n";
  return 0;
}
