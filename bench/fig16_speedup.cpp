// Fig. 16 — the headline result: speedup over the baseline kernel vs
// the SSF value, for the two arms of the system:
//   * offline untiled CSR/DCSR, C-stationary (the orange dots),
//   * online-converted tiled DCSR, B-stationary (the blue dots),
// plus the three aggregate numbers the paper reports: heuristic hybrid
// (paper 2.26x), blind all-tiling (1.63x), and offline-tiled hybrid
// (2.03x, optimistic — excludes conversion cost, which is also shown).
#include "bench_common.hpp"

#include "util/ascii_plot.hpp"

using namespace nmdt;

int main(int argc, char** argv) {
  bench::BenchEnv env("fig16_speedup", argc, argv);
  bench::banner(env.name, "speedup over baseline vs SSF (paper: 2.26x hybrid avg)");

  const SpmmConfig cfg = evaluation_config(4096, env.K);
  usize done = 0;
  const auto rows = run_suite(env.suite(), cfg, env.K,
                              [&](usize d, usize total, const SuiteRow&) {
                                done = d;
                                if (d % 20 == 0) {
                                  std::cout << "... " << d << "/" << total << "\n";
                                }
                              },
                              env.jobs);
  const SsfThreshold th = train_threshold(rows);

  Table dots({"matrix", "ssf", "speedup_offline_C_arm", "speedup_online_B_arm",
              "speedup_offline_B_arm", "offline_prep_ms", "chosen"});
  std::vector<double> hybrid, blind, offline_hybrid, offline_with_prep;
  i64 improved = 0, not_degraded = 0;
  for (const auto& r : rows) {
    const bool use_b = r.profile.ssf > th.threshold;
    dots.begin_row()
        .cell(r.spec.name)
        .cell(format_sci(r.profile.ssf))
        .cell(r.speedup_c_arm(), 3)
        .cell(r.speedup_online_b_arm(), 3)
        .cell(r.speedup_offline_b_arm(), 3)
        .cell(r.offline_prep_ms, 3)
        .cell(use_b ? "B" : "C");
    const double hybrid_speedup =
        r.t_baseline_ms / (use_b ? r.t_online_b_ms : r.t_dcsr_c_ms);
    hybrid.push_back(hybrid_speedup);
    blind.push_back(r.speedup_online_b_arm());
    offline_hybrid.push_back(r.t_baseline_ms /
                             (use_b ? r.t_offline_b_ms : r.t_dcsr_c_ms));
    offline_with_prep.push_back(
        r.t_baseline_ms /
        (use_b ? (r.t_offline_b_ms + r.offline_prep_ms) : r.t_dcsr_c_ms));
    if (hybrid_speedup > 1.0) ++improved;
    if (hybrid_speedup > 0.99) ++not_degraded;
  }
  env.emit(dots);

  // The Fig. 16 scatter: 'c' = offline CSR/DCSR C-stationary arm,
  // 'B' = online tiled-DCSR B-stationary arm, 1.0 rule = baseline.
  AsciiScatter plot;
  plot.set_labels("SSF value", "speedup over baseline");
  plot.add_hline(1.0);
  for (const auto& r : rows) {
    const double x = std::max(r.profile.ssf, 1e-16);
    plot.add(x, r.speedup_c_arm(), 'c');
    plot.add(x, r.speedup_online_b_arm(), 'B');
  }
  plot.render(std::cout);
  std::cout << "\n";

  const double n = static_cast<double>(rows.size());
  Table summary({"configuration", "geomean_speedup", "mean_speedup", "paper"});
  summary.begin_row()
      .cell("heuristic hybrid (online B + offline C)")
      .cell(geomean(hybrid), 3)
      .cell(mean(hybrid), 3)
      .cell("2.26x");
  summary.begin_row()
      .cell("blind all-tiling (online B everywhere)")
      .cell(geomean(blind), 3)
      .cell(mean(blind), 3)
      .cell("1.63x");
  summary.begin_row()
      .cell("offline-tiled hybrid (excl. prep cost)")
      .cell(geomean(offline_hybrid), 3)
      .cell(mean(offline_hybrid), 3)
      .cell("2.03x");
  summary.begin_row()
      .cell("offline-tiled hybrid (incl. prep cost)")
      .cell(geomean(offline_with_prep), 3)
      .cell(mean(offline_with_prep), 3)
      .cell("worse than online (Sec. 5.2)");
  summary.print(std::cout);
  summary.write_csv(env.name + "_summary.csv");

  std::cout << "\nmatrices improved by hybrid: "
            << format_double(100.0 * static_cast<double>(improved) / n, 1)
            << "%  (>= baseline: "
            << format_double(100.0 * static_cast<double>(not_degraded) / n, 1)
            << "%; paper: ~95% improved)\n"
            << "learned SSF_th: " << format_sci(th.threshold) << ", strict accuracy "
            << format_double(th.accuracy, 3) << "\n"
            << "Shape checks: hybrid >= offline-tiled hybrid: "
            << (geomean(hybrid) >= geomean(offline_hybrid) - 1e-9 ? "yes" : "NO")
            << "; hybrid >= blind: "
            << (geomean(hybrid) >= geomean(blind) - 1e-9 ? "yes" : "NO") << "\n"
            << "(Magnitudes are attenuated vs the paper because the baseline here\n"
            << " is a well-tuned CSR kernel rather than 2019 cuSPARSE — see\n"
            << " EXPERIMENTS.md E9 for the discussion.)\n";
  return 0;
}
