// Sec. 4.1 — why the engine's storage format is CSC: conversion-work
// comparison of the three strip-extraction designs.
//
//   stateless CSR  — every strip request probes every row (binary
//                    search), O(rows·log nnz_row) per strip;
//   stateful CSR   — per-row jagged frontier: sequential strips cheap,
//                    but 4·rows bytes of resident state and no random
//                    strip access;
//   CSC engine     — strip_width+1 col_ptr words per strip, random
//                    access for free, work proportional to the strip's
//                    own elements.
#include "bench_common.hpp"

#include "formats/convert.hpp"
#include "matgen/generators.hpp"
#include "transform/csr_baseline.hpp"
#include "transform/engine.hpp"

using namespace nmdt;

int main(int argc, char** argv) {
  bench::BenchEnv env("sec41_baseline_format", argc, argv);
  bench::banner(env.name, "CSR stateless / CSR stateful / CSC engine conversion work");

  const index_t n = 4096;
  const TilingSpec spec{64, 64};
  Table table({"matrix", "converter", "rows_probed", "probe_steps",
               "metadata_KB_read", "state_KB", "elements"});

  for (const auto& [label, A] :
       {std::pair<const char*, Csr>{"uniform d=2e-3", gen_uniform(n, n, 0.002, 41)},
        std::pair<const char*, Csr>{"powerlaw d=2e-3",
                                    gen_powerlaw_rows(n, n, 0.002, 1.4, 42)}}) {
    const Csc csc = csc_from_csr(A);
    const index_t strips = spec.num_strips(A.cols);

    CsrConversionCosts stateless;
    for (index_t s = 0; s < strips; ++s) {
      csr_stateless_convert_strip(A, s, spec, stateless);
    }
    table.begin_row()
        .cell(label)
        .cell("CSR stateless")
        .cell(static_cast<i64>(stateless.rows_scanned))
        .cell(static_cast<i64>(stateless.binary_search_steps))
        .cell(static_cast<double>(stateless.metadata_bytes_read) / 1024.0, 1)
        .cell(static_cast<double>(stateless.state_bytes) / 1024.0, 1)
        .cell(static_cast<i64>(stateless.elements_emitted));

    CsrStatefulConverter stateful(A);
    for (index_t s = 0; s < strips; ++s) stateful.convert_strip(s, spec);
    table.begin_row()
        .cell(label)
        .cell("CSR stateful")
        .cell(static_cast<i64>(stateful.costs().rows_scanned))
        .cell(static_cast<i64>(stateful.costs().binary_search_steps))
        .cell(static_cast<double>(stateful.costs().metadata_bytes_read) / 1024.0, 1)
        .cell(static_cast<double>(stateful.costs().state_bytes) / 1024.0, 1)
        .cell(static_cast<i64>(stateful.costs().elements_emitted));

    ConversionEngine engine;
    for (index_t s = 0; s < strips; ++s) engine.convert_strip(csc, s, spec);
    const EngineStats& es = engine.stats();
    // The engine probes only lanes with elements; its "metadata" is the
    // per-strip col_ptr window, its state the 2×64 pointer registers.
    table.begin_row()
        .cell(label)
        .cell("CSC engine")
        .cell(static_cast<i64>(es.steps))
        .cell(static_cast<i64>(es.comparator_ops))
        .cell(static_cast<double>(strips * (spec.strip_width + 1) * kIndexBytes) / 1024.0,
              1)
        .cell(static_cast<double>(2 * spec.strip_width * kIndexBytes) / 1024.0, 1)
        .cell(static_cast<i64>(es.elements));
  }
  env.emit(table);

  std::cout << "CSR designs probe every matrix row per strip (64 strips x " << n
            << " rows); the stateful variant additionally keeps a " << (n * 4 / 1024)
            << " KiB jagged frontier resident and forbids random strip access —\n"
            << "the CSC engine's state is two 64-entry pointer arrays (Sec. 4.1).\n";
  return 0;
}
