// Fig. 17 / Sec. 6.1 — FB-partition load balancing.  Two experiments:
//  (a) camping vs tile-rotation placement: per-partition imbalance and
//      the resulting serialization of the conversion engines;
//  (b) the FB-switch overhead sweep: relative bandwidth overhead of the
//      per-switch handoff (col_idx_frontier + next_fb_ptr) as a function
//      of non-zero tile rows stored per partition — negligible for
//      x >= 64, the paper's conclusion.
#include "bench_common.hpp"

#include "matgen/generators.hpp"
#include "sched/layout.hpp"

using namespace nmdt;

int main(int argc, char** argv) {
  bench::BenchEnv env("fig17_load_balance", argc, argv);
  bench::banner(env.name, "FB-partition camping vs tile separation (Sec. 6.1)");

  // (a) placement comparison on a uniform and a clustered matrix.
  Table placement({"matrix", "placement", "partition_imbalance", "engine_busy_us",
                   "total_us"});
  Rng rng(0xf16017);
  for (const auto& [label, A] :
       {std::pair<const char*, Csr>{"uniform", gen_uniform(4096, 4096, 0.002, 11)},
        std::pair<const char*, Csr>{"clustered",
                                    gen_block_clustered(4096, 16, 0.05, 1e-4, 12)}}) {
    DenseMatrix B(A.cols, env.K);
    B.randomize(rng);
    for (PlacementPolicy policy :
         {PlacementPolicy::kStripCamping, PlacementPolicy::kTileRotation}) {
      SpmmConfig cfg = evaluation_config(A.rows, env.K);
      cfg.placement = policy;
      const SpmmResult r = run_spmm(KernelKind::kTiledDcsrOnline, A, B, cfg);
      placement.begin_row()
          .cell(label)
          .cell(placement_name(policy))
          .cell(partition_imbalance(r.mem, cfg.arch.fb_partitions), 2)
          .cell(r.engine_busy_ns * 1e-3, 2)
          .cell(r.timing.total_ns * 1e-3, 2);
    }
  }
  env.emit(placement);

  // (b) FB-switch overhead sweep (paper: negligible if the number of
  // non-zero tile rows per partition is >= 64).
  Table sweep({"nnz_rows_per_partition_x", "switch_overhead_bytes_per_strip",
               "kernel_bytes_per_strip", "overhead_%", "verdict"});
  const Csr A = gen_uniform(4096, 4096, 0.002, 13);
  const TilingSpec spec{64, 64};
  const std::vector<Dcsr> strips = strip_dcsr_from_csr(A, spec.strip_width);
  // The overhead is relative to the kernel's whole per-strip bandwidth
  // (A elements through the engine + the B tile + atomic C updates), as
  // in the paper's L2-load-injection simulation.
  double kernel_bytes = 0.0, rows_per_strip = 0.0;
  for (const auto& s : strips) {
    const double a_bytes = static_cast<double>(s.nnz()) * 8;
    const double b_tile = 64.0 * 64.0 * 4.0;
    const double c_atomics = static_cast<double>(s.nnz_rows()) * 64.0 * 4.0 * 2.0;
    kernel_bytes += a_bytes + b_tile + c_atomics;
    rows_per_strip += static_cast<double>(s.nnz_rows());
  }
  kernel_bytes /= static_cast<double>(strips.size());
  rows_per_strip /= static_cast<double>(strips.size());

  for (i64 x : {1, 2, 4, 8, 16, 32, 64, 128, 256}) {
    const double switches = std::max(0.0, rows_per_strip / static_cast<double>(x) - 1.0);
    const double overhead =
        switches * static_cast<double>(StripPlacement::switch_handoff_bytes(64));
    const double pct = 100.0 * overhead / kernel_bytes;
    sweep.begin_row()
        .cell(x)
        .cell(overhead, 0)
        .cell(kernel_bytes, 0)
        .cell(pct, 2)
        .cell(pct < 2.0 ? "negligible" : "significant");
  }
  sweep.print(std::cout);
  sweep.write_csv(env.name + "_sweep.csv");
  std::cout << "\npaper: overhead negligible when non-zero tile rows per FB partition\n"
            << ">= 64 — splitting strips across exactly the FB partitions suffices.\n";
  return 0;
}
