// Tile-geometry ablation: the paper fixes strips at 64 columns (shared
// memory capacity, Sec. 5.1) and DCSR_HEIGHT at 64.  This sweep varies
// both for the online kernel: narrower strips raise per-strip metadata
// and engine request overheads; shorter tiles raise request counts;
// wider strips (the engine supports up to 64 lanes) amortize better but
// need a bigger B tile in shared memory.
#include "bench_common.hpp"

#include "matgen/generators.hpp"

using namespace nmdt;

int main(int argc, char** argv) {
  bench::BenchEnv env("ablation_tile_size", argc, argv);
  bench::banner(env.name, "strip width / tile height sweep for the online kernel");

  const Csr A = gen_block_clustered(4096, 16, 0.05, 1e-4, 95);
  Rng rng(0xab2);
  DenseMatrix B(A.cols, 64);
  B.randomize(rng);

  Table table({"strip_width", "tile_height", "total_us", "engine_busy_us",
               "engine_requests", "dram_MB", "shmem_B_tile_KB"});
  for (index_t width : {16, 32, 64}) {
    for (index_t height : {16, 64, 256}) {
      SpmmConfig cfg = evaluation_config(A.rows, 64);
      cfg.tiling = TilingSpec{width, height};
      const SpmmResult r = run_spmm(KernelKind::kTiledDcsrOnline, A, B, cfg);
      table.begin_row()
          .cell(i64{width})
          .cell(i64{height})
          .cell(r.timing.total_ns * 1e-3, 1)
          .cell(r.engine_busy_ns * 1e-3, 2)
          .cell(static_cast<i64>(r.engine.requests))
          .cell(static_cast<double>(r.mem.total_dram_bytes()) / 1e6, 1)
          .cell(static_cast<double>(width) * 64 * 4 / 1024.0, 1);
    }
  }
  env.emit(table);
  std::cout << "64-wide strips dominate the sweep (they amortize B-tile loads and\n"
            << "engine metadata while the 16 KiB B tile still fits shared memory —\n"
            << "the paper's choice); tile height trades request overhead against\n"
            << "per-strip conversion parallelism across the engines.\n";
  return 0;
}
