// Multi-vector width ablation: how the B- and C-arm speedups move with
// K (the number of dense vectors).  The paper fixes the B tile at
// 64×64; wider K amortizes A metadata over more useful FLOPs for the
// C arm, while the B arm re-reads A once per 64-column block — so the
// crossover between the arms shifts with K, which is why the SSF
// decision is per-(matrix, workload).
#include "bench_common.hpp"

#include "matgen/generators.hpp"

using namespace nmdt;

int main(int argc, char** argv) {
  bench::BenchEnv env("ablation_k_sweep", argc, argv);
  bench::banner(env.name, "speedup vs multi-vector width K");

  Table table({"matrix", "K", "speedup_dcsr_c", "speedup_online_b", "better_arm"});
  Rng rng(0xab1);
  for (const auto& [label, A] :
       {std::pair<const char*, Csr>{"banded", gen_banded(4096, 64, 0.15, 91)},
        std::pair<const char*, Csr>{"uniform", gen_uniform(4096, 4096, 0.002, 92)}}) {
    for (index_t K : {8, 16, 32, 64, 128, 256}) {
      DenseMatrix B(A.cols, K);
      B.randomize(rng);
      const SpmmConfig cfg = evaluation_config(A.rows, K);
      const double t_base =
          run_spmm(KernelKind::kCsrCStationaryRowWarp, A, B, cfg).timing.total_ns;
      const double t_c = run_spmm(KernelKind::kDcsrCStationary, A, B, cfg).timing.total_ns;
      const double t_b = run_spmm(KernelKind::kTiledDcsrOnline, A, B, cfg).timing.total_ns;
      table.begin_row()
          .cell(label)
          .cell(i64{K})
          .cell(t_base / t_c, 3)
          .cell(t_base / t_b, 3)
          .cell(t_b < t_c ? "B (online)" : "C (dcsr)");
    }
  }
  env.emit(table);
  std::cout << "banded (clustered) stays B-friendly across K; uniform stays\n"
            << "C-friendly — the SSF decision is stable in K for clear-cut\n"
            << "matrices, while borderline ones shift with the workload.\n";
  return 0;
}
