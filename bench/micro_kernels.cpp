// Microbenchmarks (google-benchmark) for the SpMM kernel simulations:
// host-side throughput of each kernel variant (simulated non-zeros per
// second) in counting and cache-sim modes — this bounds how large a
// suite sweep is practical.
#include <benchmark/benchmark.h>

#include "kernels/spmm.hpp"
#include "matgen/generators.hpp"

namespace nmdt {
namespace {

const Csr& test_matrix() {
  static const Csr m = gen_uniform(2048, 2048, 0.002, 42);
  return m;
}

const DenseMatrix& test_b() {
  static const DenseMatrix b = [] {
    Rng rng(1);
    DenseMatrix m(2048, 64);
    m.randomize(rng);
    return m;
  }();
  return b;
}

void run_kernel_bench(benchmark::State& state, KernelKind kind, MemMode mode) {
  SpmmConfig cfg;
  cfg.mem_mode = mode;
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_spmm(kind, test_matrix(), test_b(), cfg));
  }
  state.SetItemsProcessed(state.iterations() * test_matrix().nnz());
}

void BM_BaselineCounting(benchmark::State& s) {
  run_kernel_bench(s, KernelKind::kCsrCStationaryRowWarp, MemMode::kCounting);
}
void BM_BaselineCacheSim(benchmark::State& s) {
  run_kernel_bench(s, KernelKind::kCsrCStationaryRowWarp, MemMode::kCacheSim);
}
void BM_DcsrCStationary(benchmark::State& s) {
  run_kernel_bench(s, KernelKind::kDcsrCStationary, MemMode::kCacheSim);
}
void BM_TiledCsrB(benchmark::State& s) {
  run_kernel_bench(s, KernelKind::kTiledCsrBStationary, MemMode::kCacheSim);
}
void BM_TiledDcsrB(benchmark::State& s) {
  run_kernel_bench(s, KernelKind::kTiledDcsrBStationary, MemMode::kCacheSim);
}
void BM_TiledDcsrOnline(benchmark::State& s) {
  run_kernel_bench(s, KernelKind::kTiledDcsrOnline, MemMode::kCacheSim);
}
void BM_AStationary(benchmark::State& s) {
  run_kernel_bench(s, KernelKind::kAStationary, MemMode::kCacheSim);
}

BENCHMARK(BM_BaselineCounting);
BENCHMARK(BM_BaselineCacheSim);
BENCHMARK(BM_DcsrCStationary);
BENCHMARK(BM_TiledCsrB);
BENCHMARK(BM_TiledDcsrB);
BENCHMARK(BM_TiledDcsrOnline);
BENCHMARK(BM_AStationary);

void BM_Reference(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(spmm_reference(test_matrix(), test_b()));
  }
  state.SetItemsProcessed(state.iterations() * test_matrix().nnz());
}
BENCHMARK(BM_Reference);

}  // namespace
}  // namespace nmdt

BENCHMARK_MAIN();
