// Kernel-simulation throughput bench: times every SpMM kernel variant
// serially (--jobs 1) and with intra-kernel sharding (--jobs N) on the
// largest matrix of the chosen suite scale, and writes the comparison
// to a JSON report (BENCH_kernels.json by default).
//
// The matrix is planned ONCE (SpmmPlan: profile + every format
// conversion) and the kernels execute against the plan's operands, so
// the report separates the pipeline phases: a "phases" object carries
// plan/profile/convert wall-clock, the per-kernel timings are pure
// execute, and a "metrics" object embeds the full MetricsRegistry
// snapshot (counters / gauges / histograms) for the run.
//
// The sharded run produces bit-identical C and metrics (enforced by the
// KernelShardingSweep tests and re-checked here), so the only thing
// that changes with --jobs is host wall-clock.
//
//   --scale {tiny,small,medium,large}  suite scale (default medium)
//   --k <int>        dense B columns (default 64)
//   --jobs <int>     shard threads for the parallel arm (default:
//                    hardware concurrency)
//   --warmup <int>   untimed iterations per arm (default 1)
//   --iters <int>    timed iterations per arm; best is kept (default 3)
//   --mode {counting,cachesim}  memory model (default cachesim)
//   --out <path>     JSON report path (default BENCH_kernels.json)
#include <algorithm>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/plan.hpp"
#include "kernels/spmm.hpp"
#include "matgen/suite.hpp"
#include "obs/metrics.hpp"
#include "obs/scoped_timer.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace nmdt {
namespace {

constexpr KernelKind kAllKernels[] = {
    KernelKind::kCsrCStationaryRowWarp,  KernelKind::kCsrCStationaryRowThread,
    KernelKind::kDcsrCStationary,        KernelKind::kTiledCsrBStationary,
    KernelKind::kTiledDcsrBStationary,   KernelKind::kTiledDcsrOnline,
    KernelKind::kAStationary,            KernelKind::kMergeCStationary,
    KernelKind::kHongHybrid,
};

struct ArmTiming {
  double best_ms = 0.0;
  double mean_ms = 0.0;
};

ArmTiming time_kernel(KernelKind kind, const SpmmOperands& ops, const DenseMatrix& B,
                      const SpmmConfig& cfg, int warmup, int iters) {
  for (int i = 0; i < warmup; ++i) (void)run_spmm(kind, ops, B, cfg);
  ArmTiming t;
  t.best_ms = 1e300;
  for (int i = 0; i < iters; ++i) {
    obs::ScopedTimer sw("bench.execute_ms");
    (void)run_spmm(kind, ops, B, cfg);
    const double ms = sw.stop();
    t.best_ms = std::min(t.best_ms, ms);
    t.mean_ms += ms / iters;
  }
  return t;
}

bool bitwise_equal(const DenseMatrix& x, const DenseMatrix& y) {
  const auto xs = x.data();
  const auto ys = y.data();
  for (usize i = 0; i < xs.size(); ++i) {
    if (xs[i] != ys[i]) return false;
  }
  return true;
}

int run(int argc, char** argv) {
  CliParser cli(argc, argv);
  cli.declare("scale", "suite scale: tiny | small | medium | large (default medium)");
  cli.declare("k", "dense B columns (default 64)");
  cli.declare("jobs", "shard threads for the parallel arm (default: hardware concurrency)");
  cli.declare("warmup", "untimed iterations per arm (default 1)");
  cli.declare("iters", "timed iterations per arm, best kept (default 3)");
  cli.declare("mode", "memory model: counting | cachesim (default cachesim)");
  cli.declare("out", "JSON report path (default BENCH_kernels.json)");
  if (cli.has("help")) {
    std::cout << cli.help("micro_kernels: serial vs sharded kernel timing");
    return 0;
  }
  cli.validate();

  const std::string scale_name = cli.get("scale", "medium");
  SuiteScale scale = SuiteScale::kMedium;
  if (scale_name == "tiny") scale = SuiteScale::kTiny;
  else if (scale_name == "small") scale = SuiteScale::kSmall;
  else if (scale_name == "medium") scale = SuiteScale::kMedium;
  else if (scale_name == "large") scale = SuiteScale::kLarge;
  else throw ParseError("unknown --scale value: " + scale_name);
  const index_t K = static_cast<index_t>(cli.get_int("k", 64));
  int jobs = static_cast<int>(cli.get_int("jobs", 0));
  if (jobs <= 0) jobs = ThreadPool::default_jobs();
  const int warmup = static_cast<int>(cli.get_int("warmup", 1));
  const int iters = std::max(1, static_cast<int>(cli.get_int("iters", 3)));
  const std::string mode_name = cli.get("mode", "cachesim");
  const std::string out_path = cli.get("out", "BENCH_kernels.json");

  // The largest suite matrix is the one whose serial latency bounds a
  // sweep, so it is the one the intra-kernel speedup matters for.
  const auto specs = standard_suite(scale);
  const MatrixSpec* pick = &specs.front();
  for (const auto& s : specs) {
    if (static_cast<i64>(s.rows) * s.cols > static_cast<i64>(pick->rows) * pick->cols ||
        (static_cast<i64>(s.rows) * s.cols == static_cast<i64>(pick->rows) * pick->cols &&
         s.density > pick->density)) {
      pick = &s;
    }
  }
  const Csr A = pick->generate();
  Rng rng(1);
  DenseMatrix B(A.cols, K);
  B.randomize(rng);

  SpmmConfig cfg;
  if (mode_name == "cachesim") {
    cfg = evaluation_config(std::max<index_t>(A.rows, 64), K);
  } else if (mode_name != "counting") {
    throw ParseError("unknown --mode value: " + mode_name);
  }

  // Plan once (profile + every conversion), then run every kernel from
  // the plan's operands so the timed arms measure the execute phase
  // alone.  Start from a clean registry so the embedded metrics
  // snapshot describes exactly this run.
  obs::MetricsRegistry::global().reset();
  const auto plan = [&] {
    obs::ScopedTimer t("bench.plan_ms");
    return build_plan(A, {cfg.tiling, default_ssf_threshold(), 1.0});
  }();
  const SpmmOperands ops = plan->operands();
  const double profile_ms =
      obs::MetricsRegistry::global().histogram("plan.profile_ms").snapshot().sum;
  const double convert_ms =
      obs::MetricsRegistry::global().histogram("plan.convert_ms").snapshot().sum;

  std::cout << "matrix " << pick->name << " (" << A.rows << " x " << A.cols << ", nnz "
            << A.nnz() << "), K " << K << ", mode " << mode_name << ", jobs " << jobs
            << ", host cores " << ThreadPool::default_jobs() << "\n";
  std::cout << "plan " << plan->build_ms() << " ms (profile " << profile_ms
            << " ms, convert " << convert_ms << " ms)\n";

  std::ofstream json(out_path);
  NMDT_REQUIRE(json.good(), "cannot open JSON output path");
  json << "{\n"
       << "  \"bench\": \"micro_kernels\",\n"
       << "  \"matrix\": \"" << pick->name << "\",\n"
       << "  \"rows\": " << A.rows << ",\n"
       << "  \"cols\": " << A.cols << ",\n"
       << "  \"nnz\": " << A.nnz() << ",\n"
       << "  \"k\": " << K << ",\n"
       << "  \"mode\": \"" << mode_name << "\",\n"
       << "  \"jobs\": " << jobs << ",\n"
       << "  \"host_cores\": " << ThreadPool::default_jobs() << ",\n"
       << "  \"warmup\": " << warmup << ",\n"
       << "  \"iters\": " << iters << ",\n"
       << "  \"note\": \"speedup is parallel-arm best vs serial best; "
          "meaningful only when host_cores > 1\",\n"
       << "  \"phases\": {\"plan_ms\": " << plan->build_ms()
       << ", \"profile_ms\": " << profile_ms << ", \"convert_ms\": " << convert_ms
       << "},\n"
       << "  \"kernels\": [\n";

  bool first = true;
  for (KernelKind kind : kAllKernels) {
    SpmmConfig serial_cfg = cfg;
    serial_cfg.jobs = 1;
    SpmmConfig parallel_cfg = cfg;
    parallel_cfg.jobs = jobs;

    const SpmmResult serial_res = run_spmm(kind, ops, B, serial_cfg);
    const SpmmResult parallel_res = run_spmm(kind, ops, B, parallel_cfg);
    const bool identical = bitwise_equal(serial_res.C, parallel_res.C) &&
                           serial_res.counters == parallel_res.counters &&
                           serial_res.mem == parallel_res.mem;

    const ArmTiming serial = time_kernel(kind, ops, B, serial_cfg, warmup, iters);
    const ArmTiming parallel = time_kernel(kind, ops, B, parallel_cfg, warmup, iters);
    const double speedup = parallel.best_ms > 0.0 ? serial.best_ms / parallel.best_ms : 0.0;

    std::cout << "  " << kernel_name(kind) << ": serial " << serial.best_ms
              << " ms, jobs=" << jobs << " " << parallel.best_ms << " ms, speedup "
              << speedup << (identical ? "" : "  [MISMATCH]") << "\n";

    json << (first ? "" : ",\n") << "    {\"name\": \"" << kernel_name(kind)
         << "\", \"serial_best_ms\": " << serial.best_ms
         << ", \"serial_mean_ms\": " << serial.mean_ms
         << ", \"parallel_best_ms\": " << parallel.best_ms
         << ", \"parallel_mean_ms\": " << parallel.mean_ms
         << ", \"speedup\": " << speedup << ", \"bit_identical\": "
         << (identical ? "true" : "false") << "}";
    first = false;
    if (!identical) {
      std::cerr << "FATAL: sharded run diverged for " << kernel_name(kind) << "\n";
      json << "\n  ]\n}\n";
      return 1;
    }
  }
  json << "\n  ],\n  \"metrics\": ";
  obs::MetricsRegistry::global().write_json(json);
  json << "}\n";
  std::cout << "wrote " << out_path << "\n";
  return 0;
}

}  // namespace
}  // namespace nmdt

int main(int argc, char** argv) { return nmdt::run(argc, argv); }
