// Kernel-simulation throughput bench: times every SpMM kernel variant
// serially (--jobs 1) and with intra-kernel sharding (--jobs N) on the
// largest matrix of the chosen suite scale, and writes the comparison
// to a JSON report (BENCH_kernels.json by default).
//
// The matrix is planned ONCE (SpmmPlan: profile + every format
// conversion) and the kernels execute against the plan's operands, so
// the report separates the pipeline phases: a "phases" object carries
// plan/profile/convert wall-clock, the per-kernel timings are pure
// execute, and a "metrics" object embeds the full MetricsRegistry
// snapshot (counters / gauges / histograms) for the run.
//
// The sharded run produces bit-identical C and metrics (enforced by the
// KernelShardingSweep tests and re-checked here), so the only thing
// that changes with --jobs is host wall-clock.  On a single-core host
// the parallel arm cannot beat the serial one, so "speedup" is reported
// as null rather than a misleading ~1.0.
//
// The value-precision axis (--precision) selects the stored element
// width of the timed sweep; a "precisions" section additionally runs
// every kernel once at each of f32/f64/bf16 and reports the modelled
// bytes/FLOP and the simulated DRAM traffic, including the bf16-vs-f32
// traffic win the narrower values buy.
//
//   --scale {tiny,small,medium,large}  suite scale (default medium)
//   --k <int>        dense B columns (default 64)
//   --jobs <int>     shard threads for the parallel arm (default:
//                    hardware concurrency)
//   --warmup <int>   untimed iterations per arm (default 1)
//   --iters <int>    timed iterations per arm; best is kept (default 3)
//   --mode {counting,cachesim}  memory model (default cachesim)
//   --precision {f32,f64,bf16}  stored value type of the timed sweep
//                    (default f32)
//   --out <path>     JSON report path (default BENCH_kernels.json)
//   --history <path> bench-trajectory JSONL to append this run to
//                    (default results/bench_history.jsonl; 'none' = off)
//
// The report header carries a "host" provenance object (CPU model,
// cores, SIMD tier, compiler, build type) so downstream tooling
// (scripts/check_serial_perf.py) only ever compares timings
// like-for-like.  Each kernel row additionally carries an "hw" object
// with hardware-counter deltas from one profiled serial execute
// (perf_event where available, rusage fallback elsewhere; export
// NMDT_PERF_EVENTS=off to suppress the profiled pass entirely).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/traffic_model.hpp"
#include "core/executor.hpp"
#include "core/plan.hpp"
#include "kernels/spmm.hpp"
#include "matgen/suite.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/scoped_timer.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace nmdt {
namespace {

constexpr KernelKind kAllKernels[] = {
    KernelKind::kCsrCStationaryRowWarp,  KernelKind::kCsrCStationaryRowThread,
    KernelKind::kDcsrCStationary,        KernelKind::kTiledCsrBStationary,
    KernelKind::kTiledDcsrBStationary,   KernelKind::kTiledDcsrOnline,
    KernelKind::kAStationary,            KernelKind::kMergeCStationary,
    KernelKind::kHongHybrid,
};

constexpr Precision kAllPrecisions[] = {Precision::kF32, Precision::kF64,
                                        Precision::kBf16};

struct ArmTiming {
  double best_ms = 0.0;
  double mean_ms = 0.0;
};

ArmTiming time_kernel(KernelKind kind, const SpmmExecutor& exec, const SpmmPlan& plan,
                      const DenseMatrix& B, int warmup, int iters) {
  for (int i = 0; i < warmup; ++i) (void)exec.execute(kind, plan, B);
  ArmTiming t;
  t.best_ms = 1e300;
  for (int i = 0; i < iters; ++i) {
    obs::ScopedTimer sw("bench.execute_ms");
    (void)exec.execute(kind, plan, B);
    const double ms = sw.stop();
    t.best_ms = std::min(t.best_ms, ms);
    t.mean_ms += ms / iters;
  }
  return t;
}

/// Geometric mean of strictly-positive timings (clamped below at 1 ns
/// so a pathological zero sample cannot poison the product).
double geomean_ms(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double acc = 0.0;
  for (double x : xs) acc += std::log(std::max(x, 1e-6));
  return std::exp(acc / static_cast<double>(xs.size()));
}

/// UTC wall-clock stamp for the history line (ISO 8601, second
/// granularity — history entries are ordered, not compared, by it).
std::string utc_timestamp() {
  const std::time_t now =
      std::chrono::system_clock::to_time_t(std::chrono::system_clock::now());
  std::tm tm{};
#if defined(_WIN32)
  gmtime_s(&tm, &now);
#else
  gmtime_r(&now, &tm);
#endif
  char buf[32];
  std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm);
  return buf;
}

template <class T>
bool bitwise_equal(const DenseMatrixT<T>& x, const DenseMatrixT<T>& y) {
  const auto xs = x.data();
  const auto ys = y.data();
  if (xs.size() != ys.size()) return false;
  for (usize i = 0; i < xs.size(); ++i) {
    if (xs[i] != ys[i]) return false;
  }
  return true;
}

int run(int argc, char** argv) {
  CliParser cli(argc, argv);
  cli.declare("scale", "suite scale: tiny | small | medium | large (default medium)");
  cli.declare("k", "dense B columns (default 64)");
  cli.declare("jobs", "shard threads for the parallel arm (default: hardware concurrency)");
  cli.declare("warmup", "untimed iterations per arm (default 1)");
  cli.declare("iters", "timed iterations per arm, best kept (default 3)");
  cli.declare("mode", "memory model: counting | cachesim (default cachesim)");
  cli.declare("precision", "stored value type: f32 | f64 | bf16 (default f32)");
  cli.declare("out", "JSON report path (default BENCH_kernels.json)");
  cli.declare("history",
              "bench-trajectory JSONL appended with this run's provenance and "
              "timings (default results/bench_history.jsonl; 'none' disables)");
  if (cli.has("help")) {
    std::cout << cli.help("micro_kernels: serial vs sharded kernel timing");
    return 0;
  }
  cli.validate();
  // Hardware-counter attribution is on by default in the bench — the
  // request degrades to rusage (or to nothing, under
  // NMDT_PERF_EVENTS=off) without ever failing the run.
  obs::set_profiling_enabled(true);

  const std::string scale_name = cli.get("scale", "medium");
  SuiteScale scale = SuiteScale::kMedium;
  if (scale_name == "tiny") scale = SuiteScale::kTiny;
  else if (scale_name == "small") scale = SuiteScale::kSmall;
  else if (scale_name == "medium") scale = SuiteScale::kMedium;
  else if (scale_name == "large") scale = SuiteScale::kLarge;
  else throw ParseError("unknown --scale value: " + scale_name);
  const index_t K = static_cast<index_t>(cli.get_int("k", 64));
  int jobs = static_cast<int>(cli.get_int("jobs", 0));
  if (jobs <= 0) jobs = ThreadPool::default_jobs();
  const int warmup = static_cast<int>(cli.get_int("warmup", 1));
  const int iters = std::max(1, static_cast<int>(cli.get_int("iters", 3)));
  const std::string mode_name = cli.get("mode", "cachesim");
  const Precision precision = parse_precision(cli.get("precision", "f32"));
  const std::string out_path = cli.get("out", "BENCH_kernels.json");
  const std::string history_path = cli.get("history", "results/bench_history.jsonl");
  const int host_cores = ThreadPool::default_jobs();

  // The largest suite matrix is the one whose serial latency bounds a
  // sweep, so it is the one the intra-kernel speedup matters for.
  const auto specs = standard_suite(scale);
  const MatrixSpec* pick = &specs.front();
  for (const auto& s : specs) {
    if (static_cast<i64>(s.rows) * s.cols > static_cast<i64>(pick->rows) * pick->cols ||
        (static_cast<i64>(s.rows) * s.cols == static_cast<i64>(pick->rows) * pick->cols &&
         s.density > pick->density)) {
      pick = &s;
    }
  }
  const Csr A = pick->generate();
  Rng rng(1);
  DenseMatrix B(A.cols, K);
  B.randomize(rng);

  SpmmConfig cfg;
  if (mode_name == "cachesim") {
    cfg = evaluation_config(std::max<index_t>(A.rows, 64), K);
  } else if (mode_name != "counting") {
    throw ParseError("unknown --mode value: " + mode_name);
  }
  cfg.precision = precision;

  // Plan once (profile + every conversion), then run every kernel from
  // the plan's operands so the timed arms measure the execute phase
  // alone.  Start from a clean registry so the embedded metrics
  // snapshot describes exactly this run.
  obs::MetricsRegistry::global().reset();
  const auto plan = [&] {
    obs::ScopedTimer t("bench.plan_ms");
    return build_plan(A, {cfg.tiling, default_ssf_threshold(), 1.0, precision});
  }();
  const double profile_ms =
      obs::MetricsRegistry::global().histogram("plan.profile_ms").snapshot().sum;
  const double convert_ms =
      obs::MetricsRegistry::global().histogram("plan.convert_ms").snapshot().sum;

  std::cout << "matrix " << pick->name << " (" << A.rows << " x " << A.cols << ", nnz "
            << A.nnz() << "), K " << K << ", mode " << mode_name << ", precision "
            << precision_name(precision) << ", jobs " << jobs << ", host cores "
            << host_cores << "\n";
  std::cout << "plan " << plan->build_ms() << " ms (profile " << profile_ms
            << " ms, convert " << convert_ms << " ms)\n";

  std::ofstream json(out_path);
  NMDT_REQUIRE(json.good(), "cannot open JSON output path");
  json << "{\n"
       << "  \"bench\": \"micro_kernels\",\n"
       << "  \"matrix\": \"" << pick->name << "\",\n"
       << "  \"rows\": " << A.rows << ",\n"
       << "  \"cols\": " << A.cols << ",\n"
       << "  \"nnz\": " << A.nnz() << ",\n"
       << "  \"k\": " << K << ",\n"
       << "  \"mode\": \"" << mode_name << "\",\n"
       << "  \"precision\": \"" << precision_name(precision) << "\",\n"
       << "  \"jobs\": " << jobs << ",\n"
       << "  \"host_cores\": " << host_cores << ",\n"
       << "  \"host\": " << obs::host_info().json() << ",\n"
       << "  \"profiler_backend\": \""
       << obs::backend_name(obs::profiler_backend()) << "\",\n"
       << "  \"warmup\": " << warmup << ",\n"
       << "  \"iters\": " << iters << ",\n"
       << "  \"note\": \"speedup is parallel-arm best vs serial best; null "
          "when host_cores == 1 (a single-core host cannot show one)\",\n"
       << "  \"phases\": {\"plan_ms\": " << plan->build_ms()
       << ", \"profile_ms\": " << profile_ms << ", \"convert_ms\": " << convert_ms
       << "},\n"
       << "  \"kernels\": [\n";

  // Accumulated for the bench-history line: per-kernel serial /
  // counting bests in kAllKernels order.
  std::vector<std::string> hist_names;
  std::vector<double> hist_serial, hist_counting;

  bool first = true;
  for (KernelKind kind : kAllKernels) {
    SpmmConfig serial_cfg = cfg;
    serial_cfg.jobs = 1;
    SpmmConfig parallel_cfg = cfg;
    parallel_cfg.jobs = jobs;
    // Counting-mode serial arm: the same kernel with the event-free
    // counter pipeline (MemMode::kCounting), the configuration the
    // serial-perf gate tracks.  When the timed sweep already runs in
    // counting mode this arm coincides with the serial one but is timed
    // independently so the field is always present.
    SpmmConfig counting_cfg = serial_cfg;
    counting_cfg.mem_mode = MemMode::kCounting;
    const SpmmExecutor serial_exec(serial_cfg);
    const SpmmExecutor parallel_exec(parallel_cfg);
    const SpmmExecutor counting_exec(counting_cfg);

    const SpmmResult serial_res = serial_exec.execute(kind, *plan, B);
    const SpmmResult parallel_res = parallel_exec.execute(kind, *plan, B);
    const bool identical = bitwise_equal(serial_res.C, parallel_res.C) &&
                           bitwise_equal(serial_res.C64, parallel_res.C64) &&
                           serial_res.counters == parallel_res.counters &&
                           serial_res.mem == parallel_res.mem;

    const ArmTiming serial = time_kernel(kind, serial_exec, *plan, B, warmup, iters);
    const ArmTiming parallel = time_kernel(kind, parallel_exec, *plan, B, warmup, iters);
    const ArmTiming counting = time_kernel(kind, counting_exec, *plan, B, warmup, iters);
    // A lone host core serializes both arms: any ratio it produces is
    // scheduler noise, not a speedup — report null instead.
    const bool speedup_defined = host_cores > 1 && parallel.best_ms > 0.0;
    const double speedup = speedup_defined ? serial.best_ms / parallel.best_ms : 0.0;

    // One profiled serial execute per kernel: hardware-counter deltas
    // (IPC, LLC misses) attribute WHY a timing moved, not just that it
    // did.  Skipped entirely (no extra execute) when profiling is off.
    std::string hw_json = "null";
    if (obs::profiling_enabled()) {
      obs::ProfScope prof;
      (void)serial_exec.execute(kind, *plan, B);
      hw_json = prof.sample().json();
    }

    hist_names.push_back(kernel_name(kind));
    hist_serial.push_back(serial.best_ms);
    hist_counting.push_back(counting.best_ms);

    std::cout << "  " << kernel_name(kind) << ": serial " << serial.best_ms
              << " ms, counting " << counting.best_ms << " ms, jobs=" << jobs << " "
              << parallel.best_ms << " ms, speedup ";
    if (speedup_defined) std::cout << speedup;
    else std::cout << "n/a (single core)";
    std::cout << (identical ? "" : "  [MISMATCH]") << "\n";

    json << (first ? "" : ",\n") << "    {\"name\": \"" << kernel_name(kind)
         << "\", \"serial_best_ms\": " << serial.best_ms
         << ", \"serial_mean_ms\": " << serial.mean_ms
         << ", \"counting_best_ms\": " << counting.best_ms
         << ", \"parallel_best_ms\": " << parallel.best_ms
         << ", \"parallel_mean_ms\": " << parallel.mean_ms << ", \"speedup\": ";
    if (speedup_defined) json << speedup;
    else json << "null";
    json << ", \"bit_identical\": " << (identical ? "true" : "false")
         << ", \"hw\": " << hw_json << "}";
    first = false;
    if (!identical) {
      std::cerr << "FATAL: sharded run diverged for " << kernel_name(kind) << "\n";
      json << "\n  ]\n}\n";
      return 1;
    }
  }
  json << "\n  ],\n";

  // Per-precision section: every kernel once per stored value type
  // (jobs=1), reporting the Sec. 2 bytes/FLOP model at that width and
  // the simulated DRAM traffic.  The narrower bf16 values shrink the
  // value streams while index traffic stays fixed — the summary ratio
  // is the traffic win the precision axis buys.
  json << "  \"precisions\": [\n";
  double f32_dram = 0.0, bf16_dram = 0.0;
  for (usize pi = 0; pi < std::size(kAllPrecisions); ++pi) {
    const Precision p = kAllPrecisions[pi];
    SpmmConfig pcfg = cfg;
    pcfg.precision = p;
    pcfg.jobs = 1;
    const SpmmExecutor exec(pcfg);
    const auto pplan = p == precision
                           ? plan
                           : build_plan(A, {cfg.tiling, default_ssf_threshold(), 1.0, p});
    i64 total_dram = 0;
    json << (pi == 0 ? "" : ",\n") << "    {\"precision\": \"" << precision_name(p)
         << "\", \"value_bytes\": " << value_bytes(p)
         << ", \"model_bytes_per_flop\": "
         << bytes_per_flop(A.rows, A.nnz(), value_bytes(p)) << ", \"kernels\": [";
    for (usize ki = 0; ki < std::size(kAllKernels); ++ki) {
      const SpmmResult res = exec.execute(kAllKernels[ki], *pplan, B);
      const i64 dram = res.mem.total_dram_bytes();
      total_dram += dram;
      json << (ki == 0 ? "" : ", ") << "{\"name\": \"" << kernel_name(kAllKernels[ki])
           << "\", \"dram_bytes\": " << dram << "}";
    }
    json << "], \"total_dram_bytes\": " << total_dram << "}";
    if (p == Precision::kF32) f32_dram = static_cast<double>(total_dram);
    if (p == Precision::kBf16) bf16_dram = static_cast<double>(total_dram);
    std::cout << "  precision " << precision_name(p) << ": total sim DRAM "
              << total_dram << " B, model bytes/flop "
              << bytes_per_flop(A.rows, A.nnz(), value_bytes(p)) << "\n";
  }
  json << "\n  ],\n  \"bf16_traffic_win_vs_f32\": "
       << (bf16_dram > 0.0 ? f32_dram / bf16_dram : 0.0) << ",\n";

  json << "  \"metrics\": ";
  obs::MetricsRegistry::global().write_json(json);
  json << "}\n";
  std::cout << "wrote " << out_path << "\n";

  // Bench trajectory: append one self-contained JSONL line per run so
  // scripts/check_serial_perf.py --history can gate against the rolling
  // best and render the trend, instead of a single frozen baseline.
  if (!history_path.empty() && history_path != "none") {
    const auto parent = std::filesystem::path(history_path).parent_path();
    std::error_code ec;
    if (!parent.empty()) std::filesystem::create_directories(parent, ec);
    std::ofstream hist(history_path, std::ios::app);
    NMDT_REQUIRE(hist.good(), "cannot open bench history path");
    hist << "{\"ts\": \"" << utc_timestamp() << "\", \"bench\": \"micro_kernels\""
         << ", \"matrix\": \"" << pick->name << "\", \"k\": " << K << ", \"mode\": \""
         << mode_name << "\", \"precision\": \"" << precision_name(precision)
         << "\", \"iters\": " << iters << ", \"host\": " << obs::host_info().json()
         << ", \"serial_geomean_ms\": " << geomean_ms(hist_serial)
         << ", \"counting_geomean_ms\": " << geomean_ms(hist_counting)
         << ", \"kernels\": [";
    for (usize i = 0; i < hist_names.size(); ++i) {
      hist << (i == 0 ? "" : ", ") << "{\"name\": \"" << hist_names[i]
           << "\", \"serial_best_ms\": " << hist_serial[i]
           << ", \"counting_best_ms\": " << hist_counting[i] << "}";
    }
    hist << "]}\n";
    std::cout << "history +1 -> " << history_path << "\n";
  }
  return 0;
}

}  // namespace
}  // namespace nmdt

int main(int argc, char** argv) { return nmdt::run(argc, argv); }
