#!/usr/bin/env python3
"""Serial-perf regression gate for the kernel-simulation bench.

Compares a fresh micro_kernels report against the committed
BENCH_kernels.json baseline and fails (exit 1) when any kernel's gated
timing slowed down by more than --max-slowdown (default 10%) AND more
than --abs-slack-ms (default 1 ms — few-ms counting timings wobble more
than 10% from scheduler noise alone; a real regression clears both
bars).  Only the serial arms are gated (serial_best_ms, and
counting_best_ms where both reports carry it): they are
simulation-dominated and deterministic in work, so their wall-clock is
stable enough to gate on, unlike the parallel arm whose timing depends
on host load.

Schema growth is tolerated in both directions: a metric (or kernel)
absent from the baseline is skipped with a note, never failed — an old
baseline generated before counting_best_ms existed still gates the
fields it has.  Likewise a baseline recorded for a different
mode/precision combination skips the per-kernel gate (exit 0) instead
of failing: the workload (matrix, k) must match, the schema vintage
need not.

--min-improvement FRAC additionally requires the current report's
serial geomean (counting_best_ms preferred, serial_best_ms fallback,
per report) to be at least FRAC below the baseline's — the gate used to
pin a claimed optimization win.  This check intentionally runs across
mode vintages so a counting-mode run can be held against an older
cachesim baseline.

--update-baseline rewrites the baseline file with the current report
after printing the comparison (never combined with a failing exit: if
the gate fails, the baseline is left untouched).

Host provenance: reports written by the current bench carry a "host"
object (CPU model, cores, SIMD tier, compiler, build type).  When both
reports carry one and the fingerprints differ, the timings are not
comparable — the gate prints exactly why and exits 0 (skip, not
failure).  A baseline predating the field gates as before, with a note.

History mode (--history PATH, single positional report): instead of a
frozen two-point comparison, gate the current report against the
rolling per-kernel best of every comparable entry in the bench
trajectory JSONL that micro_kernels appends to
(results/bench_history.jsonl).  Comparable = same matrix, k, mode,
precision, and host fingerprint.  The same fractional + absolute slack
rules apply, and the geomean trajectory is rendered as a sparkline so a
slow drift across many runs is visible even when every individual step
stayed inside the slack.

Usage: check_serial_perf.py BASELINE.json CURRENT.json
         [--max-slowdown 0.10] [--min-improvement FRAC] [--update-baseline]
       check_serial_perf.py CURRENT.json --history results/bench_history.jsonl
         [--max-slowdown 0.10]
"""
import argparse
import json
import math
import shutil
import sys

SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"check_serial_perf: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)


def geomean(values):
    vals = [v for v in values if v and v > 0]
    if not vals:
        return 0.0
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def serial_times(report):
    """Per-kernel gated timing: counting_best_ms when the report has it,
    serial_best_ms otherwise (pre-fast-path schema vintage)."""
    out = {}
    for k in report.get("kernels", []):
        out[k["name"]] = k.get("counting_best_ms", k.get("serial_best_ms"))
    return out


HOST_FIELDS = ("cpu_model", "host_cores", "simd_tier", "compiler",
               "build_type", "os")


def host_fingerprint(report):
    """Comparable-host identity, or None for reports predating the field."""
    host = report.get("host")
    if not isinstance(host, dict):
        return None
    return "|".join(str(host.get(f, "?")) for f in HOST_FIELDS)


def host_field_diff(a_fp, b_fp):
    """Per-field lines for the fields where two fingerprints disagree —
    'cpu_model: Xeon X -> EPYC Y', so the operator sees *what* changed
    (new toolchain? different box? debug build?) without eyeballing two
    opaque pipe-joined strings."""
    a_parts, b_parts = a_fp.split("|"), b_fp.split("|")
    lines = []
    for field, a_val, b_val in zip(HOST_FIELDS, a_parts, b_parts):
        if a_val != b_val:
            lines.append(f"    {field}: {a_val} -> {b_val}")
    if not lines:  # differing fingerprints must differ somewhere visible
        lines.append(f"    (fingerprint shape differs: {a_fp!r} vs {b_fp!r})")
    return lines


def check_hosts_comparable(base, curr, base_label="baseline"):
    """True when gating may proceed.  False means the hosts provably
    differ — the caller should skip (exit 0), never fail."""
    bfp, cfp = host_fingerprint(base), host_fingerprint(curr)
    if bfp is None:
        print(f"check_serial_perf: {base_label} has no host provenance "
              "(pre-provenance vintage) — gating anyway")
        return True
    if cfp is None:
        print("check_serial_perf: current report has no host provenance — "
              "gating anyway")
        return True
    if bfp != cfp:
        print("check_serial_perf: HOST MISMATCH — timings are not comparable, "
              "gate skipped:\n"
              f"  {base_label}: {bfp}\n"
              f"  current:  {cfp}\n"
              "  fields that differ:\n" +
              "\n".join(host_field_diff(bfp, cfp)) + "\n"
              "  (regenerate the baseline on this host to re-arm the gate)")
        return False
    return True


def sparkline(values, width=32):
    vals = [v for v in values if isinstance(v, (int, float)) and math.isfinite(v)]
    if not vals:
        return ""
    if len(vals) > width:  # keep the per-bucket max so spikes survive
        out, n = [], len(vals)
        for b in range(width):
            lo, hi = b * n // width, max(b * n // width + 1, (b + 1) * n // width)
            out.append(max(vals[lo:hi]))
        vals = out
    lo, hi = min(vals), max(vals)
    if hi <= lo:
        return SPARK_LEVELS[3] * len(vals)
    return "".join(SPARK_LEVELS[
        min(7, int((v - lo) / (hi - lo) * 7.999))] for v in vals)


def load_history(path):
    """Parse the JSONL trajectory; malformed lines are counted, not fatal
    (a crash mid-append must never wedge the gate)."""
    entries, bad = [], 0
    try:
        with open(path) as f:
            for line in f:
                line = line.strip()
                if not line:
                    continue
                try:
                    entries.append(json.loads(line))
                except json.JSONDecodeError:
                    bad += 1
    except OSError as e:
        print(f"check_serial_perf: cannot read history {path}: {e}",
              file=sys.stderr)
        sys.exit(2)
    if bad:
        print(f"check_serial_perf: history: skipped {bad} malformed line(s)")
    return entries


def run_history_mode(args):
    curr = load(args.reports[0])
    entries = load_history(args.history)
    cfp = host_fingerprint(curr)

    mismatched_hosts = {}  # fingerprint -> entry count, same workload only

    def comparable(e):
        if any(e.get(k) != curr.get(k) for k in ("matrix", "k")):
            return False
        if e.get("mode") != curr.get("mode"):
            return False
        if e.get("precision", "f32") != curr.get("precision", "f32"):
            return False
        efp = host_fingerprint(e)
        if efp is not None and cfp is not None and efp != cfp:
            mismatched_hosts[efp] = mismatched_hosts.get(efp, 0) + 1
            return False
        return True

    matched = [e for e in entries if comparable(e)]
    skipped = len(entries) - len(matched)
    print(f"check_serial_perf: history {args.history}: {len(entries)} entries, "
          f"{len(matched)} comparable ({skipped} other workload/host)")
    for efp, count in mismatched_hosts.items():
        # Same workload, different host: say exactly which provenance
        # fields diverged so a toolchain/box change is diagnosable from
        # the gate log alone.
        print(f"check_serial_perf: HOST MISMATCH — {count} same-workload "
              "history entries excluded; fields that differ:\n" +
              "\n".join(host_field_diff(efp, cfp)))
    if not matched:
        print("check_serial_perf: no comparable history — nothing to gate "
              "against (first run on this host/workload)")
        return

    # Rolling best per kernel: the tightest bar any comparable run set.
    best = {}
    for e in matched:
        for name, t in serial_times(e).items():
            if t and t > 0 and (name not in best or t < best[name]):
                best[name] = t

    failures = []
    for name, now in sorted(serial_times(curr).items()):
        if name not in best or not now:
            print(f"  {name}: no history entry, skipped")
            continue
        was = best[name]
        ratio = now / was if was > 0 else float("inf")
        slack = max(was * args.max_slowdown, args.abs_slack_ms)
        verdict = "ok"
        if now - was > slack:
            verdict = "REGRESSION"
            failures.append(name)
        print(f"  {name}: rolling best {was:.4f} ms -> {now:.4f} ms "
              f"(x{ratio:.3f}) {verdict}")

    # Trajectory: geomean of the gated metric per entry, current last.
    series = [geomean(serial_times(e).values()) for e in matched]
    series.append(geomean(serial_times(curr).values()))
    print(f"  trajectory (geomean ms, {len(series)} runs, current last): "
          f"{sparkline(series)}  [{min(series):.4f} .. {max(series):.4f}]")

    if failures:
        print(f"check_serial_perf: slower than rolling best by > "
              f"{args.max_slowdown:.0%} + slack for: {', '.join(failures)}",
              file=sys.stderr)
        sys.exit(1)
    print(f"check_serial_perf: all kernels within {args.max_slowdown:.0%} "
          "of the rolling best")


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("reports", nargs="+",
                    help="BASELINE.json CURRENT.json, or just CURRENT.json "
                         "with --history")
    ap.add_argument("--history", default=None,
                    help="bench trajectory JSONL (micro_kernels --history); "
                         "gates the single positional report against the "
                         "rolling best of comparable entries")
    ap.add_argument("--max-slowdown", type=float, default=0.10,
                    help="allowed fractional increase per gated metric (default 0.10)")
    ap.add_argument("--abs-slack-ms", type=float, default=1.0,
                    help="absolute slack floor in ms: a metric only regresses when "
                         "it exceeds BOTH the fractional and the absolute allowance "
                         "(keeps scheduler noise on few-ms timings from tripping a "
                         "purely relative gate; default 1.0)")
    ap.add_argument("--min-improvement", type=float, default=None,
                    help="require the serial geomean to drop by at least this "
                         "fraction vs the baseline (e.g. 0.20 for 20%%)")
    ap.add_argument("--update-baseline", action="store_true",
                    help="rewrite the baseline with the current report when the "
                         "gate passes")
    args = ap.parse_args()

    if args.history is not None:
        if len(args.reports) != 1:
            ap.error("--history takes exactly one positional report")
        run_history_mode(args)
        return
    if len(args.reports) != 2:
        ap.error("expected BASELINE.json CURRENT.json (or --history)")
    args.baseline, args.current = args.reports

    base = load(args.baseline)
    curr = load(args.current)

    # Different hosts produce incomparable wall-clock: skip, explain,
    # exit 0 — a laptop rebuild must not "regress" a CI baseline.
    if not check_hosts_comparable(base, curr):
        return

    # Same workload, or the comparison is meaningless.
    for key in ("matrix", "k"):
        if base.get(key) != curr.get(key):
            print(f"check_serial_perf: {key} differs: baseline "
                  f"{base.get(key)!r} vs current {curr.get(key)!r}", file=sys.stderr)
            sys.exit(2)

    # Mode/precision are schema axes, not workload identity: a baseline
    # recorded for a combination the current run does not reproduce
    # skips the per-kernel gate rather than failing it.
    same_mode = base.get("mode") == curr.get("mode")
    same_precision = base.get("precision", "f32") == curr.get("precision", "f32")
    failures = []
    if not (same_mode and same_precision):
        print(f"check_serial_perf: baseline is mode={base.get('mode')!r} "
              f"precision={base.get('precision', 'f32')!r}, current is "
              f"mode={curr.get('mode')!r} precision={curr.get('precision', 'f32')!r}"
              " — per-kernel gate skipped (no comparable baseline entries)")
    else:
        base_by_name = {k["name"]: k for k in base.get("kernels", [])}
        for k in curr.get("kernels", []):
            name = k["name"]
            if name not in base_by_name:
                print(f"  {name}: no baseline entry, skipped")
                continue
            bk = base_by_name[name]
            for metric in ("serial_best_ms", "counting_best_ms"):
                if metric not in k:
                    continue
                if metric not in bk:
                    print(f"  {name}.{metric}: absent from baseline, skipped")
                    continue
                was, now = bk[metric], k[metric]
                ratio = now / was if was > 0 else float("inf")
                slack = max(was * args.max_slowdown, args.abs_slack_ms)
                verdict = "ok"
                if now - was > slack:
                    verdict = "REGRESSION"
                    failures.append(f"{name}.{metric}")
                print(f"  {name}.{metric}: {was:.4f} ms -> {now:.4f} ms "
                      f"(x{ratio:.3f}) {verdict}")
        if failures:
            print(f"check_serial_perf: serial slowdown > "
                  f"{args.max_slowdown:.0%} for: {', '.join(failures)}",
                  file=sys.stderr)
            sys.exit(1)
        print(f"check_serial_perf: all gated metrics within "
              f"{args.max_slowdown:.0%} of baseline")

    if args.min_improvement is not None:
        base_gm = geomean(serial_times(base).values())
        curr_gm = geomean(serial_times(curr).values())
        if base_gm <= 0 or curr_gm <= 0:
            print("check_serial_perf: cannot compute geomean improvement "
                  "(missing timings)", file=sys.stderr)
            sys.exit(2)
        drop = 1.0 - curr_gm / base_gm
        print(f"check_serial_perf: serial geomean {base_gm:.4f} ms -> "
              f"{curr_gm:.4f} ms (drop {drop:.1%}, required "
              f">= {args.min_improvement:.0%})")
        if drop < args.min_improvement:
            print(f"check_serial_perf: geomean improvement {drop:.1%} below "
                  f"required {args.min_improvement:.0%}", file=sys.stderr)
            sys.exit(1)

    if args.update_baseline:
        shutil.copyfile(args.current, args.baseline)
        print(f"check_serial_perf: baseline {args.baseline} updated")


if __name__ == "__main__":
    main()
