#!/usr/bin/env python3
"""Serial-perf regression gate for the kernel-simulation bench.

Compares a fresh micro_kernels report against the committed
BENCH_kernels.json baseline and fails (exit 1) when any kernel's gated
timing slowed down by more than --max-slowdown (default 10%) AND more
than --abs-slack-ms (default 1 ms — few-ms counting timings wobble more
than 10% from scheduler noise alone; a real regression clears both
bars).  Only the serial arms are gated (serial_best_ms, and
counting_best_ms where both reports carry it): they are
simulation-dominated and deterministic in work, so their wall-clock is
stable enough to gate on, unlike the parallel arm whose timing depends
on host load.

Schema growth is tolerated in both directions: a metric (or kernel)
absent from the baseline is skipped with a note, never failed — an old
baseline generated before counting_best_ms existed still gates the
fields it has.  Likewise a baseline recorded for a different
mode/precision combination skips the per-kernel gate (exit 0) instead
of failing: the workload (matrix, k) must match, the schema vintage
need not.

--min-improvement FRAC additionally requires the current report's
serial geomean (counting_best_ms preferred, serial_best_ms fallback,
per report) to be at least FRAC below the baseline's — the gate used to
pin a claimed optimization win.  This check intentionally runs across
mode vintages so a counting-mode run can be held against an older
cachesim baseline.

--update-baseline rewrites the baseline file with the current report
after printing the comparison (never combined with a failing exit: if
the gate fails, the baseline is left untouched).

Usage: check_serial_perf.py BASELINE.json CURRENT.json
         [--max-slowdown 0.10] [--min-improvement FRAC] [--update-baseline]
"""
import argparse
import json
import math
import shutil
import sys


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"check_serial_perf: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)


def geomean(values):
    vals = [v for v in values if v and v > 0]
    if not vals:
        return 0.0
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def serial_times(report):
    """Per-kernel gated timing: counting_best_ms when the report has it,
    serial_best_ms otherwise (pre-fast-path schema vintage)."""
    out = {}
    for k in report.get("kernels", []):
        out[k["name"]] = k.get("counting_best_ms", k.get("serial_best_ms"))
    return out


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--max-slowdown", type=float, default=0.10,
                    help="allowed fractional increase per gated metric (default 0.10)")
    ap.add_argument("--abs-slack-ms", type=float, default=1.0,
                    help="absolute slack floor in ms: a metric only regresses when "
                         "it exceeds BOTH the fractional and the absolute allowance "
                         "(keeps scheduler noise on few-ms timings from tripping a "
                         "purely relative gate; default 1.0)")
    ap.add_argument("--min-improvement", type=float, default=None,
                    help="require the serial geomean to drop by at least this "
                         "fraction vs the baseline (e.g. 0.20 for 20%%)")
    ap.add_argument("--update-baseline", action="store_true",
                    help="rewrite the baseline with the current report when the "
                         "gate passes")
    args = ap.parse_args()

    base = load(args.baseline)
    curr = load(args.current)

    # Same workload, or the comparison is meaningless.
    for key in ("matrix", "k"):
        if base.get(key) != curr.get(key):
            print(f"check_serial_perf: {key} differs: baseline "
                  f"{base.get(key)!r} vs current {curr.get(key)!r}", file=sys.stderr)
            sys.exit(2)

    # Mode/precision are schema axes, not workload identity: a baseline
    # recorded for a combination the current run does not reproduce
    # skips the per-kernel gate rather than failing it.
    same_mode = base.get("mode") == curr.get("mode")
    same_precision = base.get("precision", "f32") == curr.get("precision", "f32")
    failures = []
    if not (same_mode and same_precision):
        print(f"check_serial_perf: baseline is mode={base.get('mode')!r} "
              f"precision={base.get('precision', 'f32')!r}, current is "
              f"mode={curr.get('mode')!r} precision={curr.get('precision', 'f32')!r}"
              " — per-kernel gate skipped (no comparable baseline entries)")
    else:
        base_by_name = {k["name"]: k for k in base.get("kernels", [])}
        for k in curr.get("kernels", []):
            name = k["name"]
            if name not in base_by_name:
                print(f"  {name}: no baseline entry, skipped")
                continue
            bk = base_by_name[name]
            for metric in ("serial_best_ms", "counting_best_ms"):
                if metric not in k:
                    continue
                if metric not in bk:
                    print(f"  {name}.{metric}: absent from baseline, skipped")
                    continue
                was, now = bk[metric], k[metric]
                ratio = now / was if was > 0 else float("inf")
                slack = max(was * args.max_slowdown, args.abs_slack_ms)
                verdict = "ok"
                if now - was > slack:
                    verdict = "REGRESSION"
                    failures.append(f"{name}.{metric}")
                print(f"  {name}.{metric}: {was:.4f} ms -> {now:.4f} ms "
                      f"(x{ratio:.3f}) {verdict}")
        if failures:
            print(f"check_serial_perf: serial slowdown > "
                  f"{args.max_slowdown:.0%} for: {', '.join(failures)}",
                  file=sys.stderr)
            sys.exit(1)
        print(f"check_serial_perf: all gated metrics within "
              f"{args.max_slowdown:.0%} of baseline")

    if args.min_improvement is not None:
        base_gm = geomean(serial_times(base).values())
        curr_gm = geomean(serial_times(curr).values())
        if base_gm <= 0 or curr_gm <= 0:
            print("check_serial_perf: cannot compute geomean improvement "
                  "(missing timings)", file=sys.stderr)
            sys.exit(2)
        drop = 1.0 - curr_gm / base_gm
        print(f"check_serial_perf: serial geomean {base_gm:.4f} ms -> "
              f"{curr_gm:.4f} ms (drop {drop:.1%}, required "
              f">= {args.min_improvement:.0%})")
        if drop < args.min_improvement:
            print(f"check_serial_perf: geomean improvement {drop:.1%} below "
                  f"required {args.min_improvement:.0%}", file=sys.stderr)
            sys.exit(1)

    if args.update_baseline:
        shutil.copyfile(args.current, args.baseline)
        print(f"check_serial_perf: baseline {args.baseline} updated")


if __name__ == "__main__":
    main()
