#!/usr/bin/env python3
"""Serial-perf regression gate for the kernel-simulation bench.

Compares a fresh micro_kernels report against the committed
BENCH_kernels.json baseline and fails (exit 1) when any kernel's
serial_best_ms slowed down by more than --max-slowdown (default 10%).
Only the serial arm is gated: it is simulation-dominated and
deterministic in work, so its wall-clock is stable enough to gate on,
unlike the parallel arm whose timing depends on host load.

The two reports must describe the same experiment (matrix, k, mode,
precision where present) — comparing different workloads is a config
error (exit 2), not a pass.

Usage: check_serial_perf.py BASELINE.json CURRENT.json [--max-slowdown 0.10]
"""
import argparse
import json
import sys


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"check_serial_perf: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--max-slowdown", type=float, default=0.10,
                    help="allowed fractional serial_best_ms increase (default 0.10)")
    args = ap.parse_args()

    base = load(args.baseline)
    curr = load(args.current)

    # Same experiment, or the comparison is meaningless.  `precision`
    # is absent from pre-precision-axis baselines; treat that as f32.
    for key in ("matrix", "k", "mode"):
        if base.get(key) != curr.get(key):
            print(f"check_serial_perf: {key} differs: baseline "
                  f"{base.get(key)!r} vs current {curr.get(key)!r}", file=sys.stderr)
            sys.exit(2)
    if base.get("precision", "f32") != curr.get("precision", "f32"):
        print("check_serial_perf: precision differs: baseline "
              f"{base.get('precision', 'f32')!r} vs current "
              f"{curr.get('precision', 'f32')!r}", file=sys.stderr)
        sys.exit(2)

    base_ms = {k["name"]: k["serial_best_ms"] for k in base.get("kernels", [])}
    failures = []
    for k in curr.get("kernels", []):
        name = k["name"]
        if name not in base_ms:
            print(f"  {name}: no baseline entry, skipped")
            continue
        was, now = base_ms[name], k["serial_best_ms"]
        ratio = now / was if was > 0 else float("inf")
        verdict = "ok"
        if ratio > 1.0 + args.max_slowdown:
            verdict = "REGRESSION"
            failures.append(name)
        print(f"  {name}: {was:.4f} ms -> {now:.4f} ms (x{ratio:.3f}) {verdict}")
    if failures:
        print(f"check_serial_perf: serial slowdown > "
              f"{args.max_slowdown:.0%} for: {', '.join(failures)}", file=sys.stderr)
        sys.exit(1)
    print(f"check_serial_perf: all kernels within {args.max_slowdown:.0%} "
          "of baseline")


if __name__ == "__main__":
    main()
