#!/usr/bin/env bash
# Tier-1 verification: the standard release build + full test suite
# (ROADMAP.md), a trace smoke run (nmdt_cli --trace/--metrics validated
# by trace_lint), the tsan preset re-running the concurrency tests
# (thread pool, plan cache, parallel suite runner, the intra-kernel
# shard fan-out, chaos sweep, and the tracer) under ThreadSanitizer,
# and the asan-ubsan preset re-running the robustness tests (fault
# injection, fuzzers, serialization, parsers) under Address+UBSan.
#
# Usage: scripts/tier1.sh [--no-tsan] [--no-asan]
set -euo pipefail
cd "$(dirname "$0")/.."

run_tsan=1
run_asan=1
for arg in "$@"; do
  case "$arg" in
    --no-tsan) run_tsan=0 ;;
    --no-asan) run_asan=0 ;;
  esac
done

echo "==== tier-1: standard build + ctest ===="
cmake -B build -S .
cmake --build build -j
ctest --test-dir build --output-on-failure -j

echo "==== tier-1: trace smoke (run --trace + lint) ===="
smoke_dir=build/trace_smoke
mkdir -p "$smoke_dir"
./build/examples/example_nmdt_cli --cmd run --k 16 --jobs 4 \
  --trace "$smoke_dir/trace.json" --metrics "$smoke_dir/metrics.json"
./build/examples/example_trace_lint --trace "$smoke_dir/trace.json"
./build/examples/example_trace_lint --trace "$smoke_dir/metrics.json" --json-only

if [[ "$run_tsan" == 1 ]]; then
  echo "==== tier-1: tsan preset (concurrency tests) ===="
  cmake --preset tsan
  cmake --build --preset tsan -j
  ctest --preset tsan --output-on-failure
fi

if [[ "$run_asan" == 1 ]]; then
  echo "==== tier-1: asan-ubsan preset (robustness tests) ===="
  cmake --preset asan-ubsan
  cmake --build --preset asan-ubsan -j
  ctest --preset asan-ubsan --output-on-failure
fi

echo "==== tier-1: OK ===="
