#!/usr/bin/env bash
# Tier-1 verification: the standard release build + full test suite
# (ROADMAP.md), a trace smoke run (nmdt_cli --trace/--metrics validated
# by trace_lint), and the tsan preset re-running the concurrency tests
# (thread pool, plan cache, parallel suite runner, the intra-kernel
# shard fan-out, and the tracer) under ThreadSanitizer.
#
# Usage: scripts/tier1.sh [--no-tsan]
set -euo pipefail
cd "$(dirname "$0")/.."

run_tsan=1
if [[ "${1:-}" == "--no-tsan" ]]; then run_tsan=0; fi

echo "==== tier-1: standard build + ctest ===="
cmake -B build -S .
cmake --build build -j
ctest --test-dir build --output-on-failure -j

echo "==== tier-1: trace smoke (run --trace + lint) ===="
smoke_dir=build/trace_smoke
mkdir -p "$smoke_dir"
./build/examples/example_nmdt_cli --cmd run --k 16 --jobs 4 \
  --trace "$smoke_dir/trace.json" --metrics "$smoke_dir/metrics.json"
./build/examples/example_trace_lint --trace "$smoke_dir/trace.json"
./build/examples/example_trace_lint --trace "$smoke_dir/metrics.json" --json-only

if [[ "$run_tsan" == 1 ]]; then
  echo "==== tier-1: tsan preset (concurrency tests) ===="
  cmake --preset tsan
  cmake --build --preset tsan -j
  ctest --preset tsan --output-on-failure
fi

echo "==== tier-1: OK ===="
