#!/usr/bin/env bash
# Tier-1 verification: the standard release build + full test suite
# (ROADMAP.md), a trace smoke run (nmdt_cli --trace/--metrics validated
# by trace_lint), a durable-sweep smoke (checkpoint journal written,
# resumed, and linted; committed BENCH_kernels.json linted), the
# performance observatory (trace -> markdown report + folded flamegraph
# stacks + jobs=1-vs-jobs=4 diff, and the bench-trajectory rolling-best
# gate over results/bench_history.jsonl), the tsan
# preset re-running the concurrency tests (thread pool, plan cache,
# parallel suite runner, the intra-kernel shard fan-out, chaos sweep,
# resume/cancellation, and the tracer) under ThreadSanitizer, and the
# asan-ubsan preset re-running the robustness tests (fault injection,
# fuzzers, serialization, parsers, journal corruption) under
# Address+UBSan.
#
# Every stage runs under a hard `timeout`: a hung build or a deadlocked
# test fails tier-1 instead of wedging it (the same policy the ctest
# TIMEOUT property applies per test).
#
# Usage: scripts/tier1.sh [--no-tsan] [--no-asan]
set -euo pipefail
cd "$(dirname "$0")/.."

run_tsan=1
run_asan=1
for arg in "$@"; do
  case "$arg" in
    --no-tsan) run_tsan=0 ;;
    --no-asan) run_asan=0 ;;
  esac
done

echo "==== tier-1: standard build + ctest ===="
timeout 600 cmake -B build -S .
timeout 1800 cmake --build build -j
timeout 1800 ctest --test-dir build --output-on-failure -j

echo "==== tier-1: trace smoke (run --trace + lint) ===="
smoke_dir=build/trace_smoke
mkdir -p "$smoke_dir"
timeout 300 ./build/examples/example_nmdt_cli --cmd run --k 16 --jobs 4 \
  --trace "$smoke_dir/trace.json" --metrics "$smoke_dir/metrics.json"
timeout 60 ./build/examples/example_trace_lint --trace "$smoke_dir/trace.json"
timeout 60 ./build/examples/example_trace_lint --metrics "$smoke_dir/metrics.json"

echo "==== tier-1: durable sweep smoke (journal + resume + lint) ===="
rm -f "$smoke_dir/sweep.nmdj"
timeout 600 ./build/examples/example_nmdt_cli --cmd suite --scale tiny --k 8 \
  --journal "$smoke_dir/sweep.nmdj" --out "$smoke_dir/sweep.csv"
# Resuming a completed sweep is a pure replay and must reproduce the
# table byte-for-byte.
timeout 600 ./build/examples/example_nmdt_cli --cmd suite --scale tiny --k 8 \
  --resume "$smoke_dir/sweep.nmdj" --out "$smoke_dir/sweep_resumed.csv"
cmp "$smoke_dir/sweep.csv" "$smoke_dir/sweep_resumed.csv"
timeout 60 ./build/examples/example_trace_lint --journal "$smoke_dir/sweep.nmdj"
timeout 60 ./build/examples/example_trace_lint --trace BENCH_kernels.json --json-only

echo "==== tier-1: forced-scalar SIMD path (NMDT_SIMD=off) ===="
# The portable fallback must never rot: re-run the SIMD/kernel
# determinism tests and one full kernel sweep with dispatch forced to
# the scalar tier.  Bit-identity across tiers means the outputs here
# match the SIMD run exactly.
timeout 300 env NMDT_SIMD=off ./build/tests/simd_test
timeout 600 env NMDT_SIMD=off ./build/tests/kernels_test
timeout 300 env NMDT_SIMD=off ./build/examples/example_nmdt_cli --cmd run --k 16 \
  --kernel all

echo "==== tier-1: precision smoke (f64/f32/bf16 kernel sweep) ===="
# One matrix through all nine kernels at every stored precision: each
# run checks jobs {1,4} bit-identity within the precision and the fSPMV
# tolerance bound against an f64 reference (bf16 included — the
# tolerance-verify of bf16 against f64 the precision axis promises).
for prec in f64 f32 bf16; do
  timeout 300 ./build/examples/example_nmdt_cli --cmd run --k 16 \
    --precision "$prec" --kernel all
done

echo "==== tier-1: performance observatory (report + diff + flamegraph) ===="
# Offline trace analytics end-to-end: trace a tiny suite, turn the
# trace into a markdown report with folded flamegraph stacks, check the
# report carries its required sections and the stacks are non-empty and
# schema-clean ("stack <integer ns>" per line), then diff a jobs=1
# trace against a jobs=4 trace of the same workload.
timeout 600 ./build/examples/example_nmdt_cli --cmd suite --scale tiny --k 8 \
  --jobs 1 --out "$smoke_dir/obs_suite1.csv" --trace "$smoke_dir/obs_trace_j1.json"
timeout 600 ./build/examples/example_nmdt_cli --cmd suite --scale tiny --k 8 \
  --jobs 4 --out "$smoke_dir/obs_suite4.csv" --trace "$smoke_dir/obs_trace_j4.json"
timeout 120 ./build/examples/example_nmdt_cli --cmd report \
  --in "$smoke_dir/obs_trace_j4.json" --out "$smoke_dir/obs_report.md" \
  --folded "$smoke_dir/obs_stacks.folded"
test -s "$smoke_dir/obs_stacks.folded"
awk 'NF < 2 || $NF !~ /^[0-9]+$/ { print "bad folded line " NR ": " $0; bad = 1 }
     END { exit bad }' "$smoke_dir/obs_stacks.folded"
grep -q "## Hotspots" "$smoke_dir/obs_report.md"
grep -q "## Critical path" "$smoke_dir/obs_report.md"
grep -q "## Folded stacks" "$smoke_dir/obs_report.md"
timeout 120 ./build/examples/example_nmdt_cli --cmd report \
  --in "$smoke_dir/obs_trace_j4.json" --diff "$smoke_dir/obs_trace_j1.json" \
  --out "$smoke_dir/obs_report_diff.md"
grep -q "## Diff" "$smoke_dir/obs_report_diff.md"

echo "==== tier-1: serial-perf regression gate (f32) ===="
# Re-time the kernels at f32 on the same matrix the committed
# BENCH_kernels.json baseline used (medium scale) and gate every
# kernel's serial_best_ms (and, where the baseline has it, the
# counting-mode fast-path counting_best_ms).  The baseline is a
# per-metric max envelope over several independent runs, and the slack
# is sized for a shared host: best-of-3 timings here swing up to ~1.5x
# run-to-run under neighbour load, so a tight (10%) gate false-fails
# routinely.  0.60 slack still catches the regressions that matter —
# losing SIMD dispatch, a complexity blowup, or a fast-path bypass are
# all well over 2x.
timeout 900 ./build/bench/micro_kernels --scale medium --iters 3 \
  --precision f32 --out "$smoke_dir/bench_now.json" \
  --history results/bench_history.jsonl
timeout 60 python3 scripts/check_serial_perf.py \
  BENCH_kernels.json "$smoke_dir/bench_now.json" \
  --max-slowdown 0.60 --abs-slack-ms 5.0
# Bench-trajectory gate: the same run held against the rolling best of
# every comparable entry in the history (same matrix/k/mode/precision/
# host), with the trajectory sparkline rendered for drift review.  The
# rolling best converges to the fastest run ever observed, so this
# gate needs the same noise-sized slack as the envelope gate above: a
# single quiet-host run permanently lowers the bar for every noisy
# run after it.
timeout 60 python3 scripts/check_serial_perf.py "$smoke_dir/bench_now.json" \
  --history results/bench_history.jsonl --max-slowdown 0.60 --abs-slack-ms 5.0

echo "==== tier-1: counting-mode sweep (fast-path smoke) ===="
# The counting fast path is the default-mode hot configuration: time
# the whole kernel set in counting mode so a fast-path regression (or a
# bit-identity break, which micro_kernels exits 1 on) fails tier-1 even
# when the cachesim numbers above stay flat.
timeout 900 ./build/bench/micro_kernels --scale medium --iters 3 \
  --precision f32 --mode counting --out "$smoke_dir/bench_counting.json" \
  --history results/bench_history.jsonl

echo "==== tier-1: service smoke (daemon burst + SIGTERM drain) ===="
# The SpMM daemon end to end: start it on a FIFO so stdin stays open,
# feed a mixed burst (valid, coalescible, malformed JSON, over-quota,
# past-deadline), SIGTERM it mid-flight, and assert the graceful-
# shutdown contract: every request line got exactly one response line,
# the process exited 0, and the flushed metrics snapshot is
# schema-valid.
service_dir=build/service_smoke
rm -rf "$service_dir" && mkdir -p "$service_dir"
mkfifo "$service_dir/requests.fifo"
./build/examples/example_nmdt_serve --workers 2 --tenant-rate 0.001 \
  --tenant-burst 4 --metrics "$service_dir/metrics.json" \
  < "$service_dir/requests.fifo" > "$service_dir/responses.jsonl" \
  2> "$service_dir/serve.log" &
serve_pid=$!
exec 3> "$service_dir/requests.fifo"  # keep the write end open
{
  echo '{"id":"ok-1","matrix":"gen:uniform:128x128:0.05:1","k":8}'
  echo '{"id":"ok-2","matrix":"gen:uniform:128x128:0.05:1","k":8,"b_seed":3}'
  echo '{"id":"ok-3","matrix":"gen:uniform:128x128:0.05:1","k":8,"b_seed":4}'
  echo '{"id":"ok-1-again","tenant":"t2","matrix":"gen:uniform:128x128:0.05:1","k":8}'
  echo 'this is not json'
  echo '{"id":"bad-field","matrix":"gen:uniform:64x64:0.1:1","bogus":true}'
  echo '{"id":"late","matrix":"gen:uniform:128x128:0.05:1","k":8,"deadline_ms":0.001}'
  echo '{"id":"q-1","tenant":"hog","matrix":"gen:uniform:64x64:0.1:1","k":8}'
  echo '{"id":"q-2","tenant":"hog","matrix":"gen:uniform:64x64:0.1:1","k":8}'
  echo '{"id":"q-3","tenant":"hog","matrix":"gen:uniform:64x64:0.1:1","k":8}'
  echo '{"id":"q-4","tenant":"hog","matrix":"gen:uniform:64x64:0.1:1","k":8}'
  echo '{"id":"q-5","tenant":"hog","matrix":"gen:uniform:64x64:0.1:1","k":8}'
} >&3
sleep 1  # let the burst reach the admission edge mid-flight
kill -TERM "$serve_pid"
exec 3>&-  # close the FIFO write end
rc=0; wait "$serve_pid" || rc=$?
test "$rc" -eq 0  # graceful drain exits 0
# Exactly one response per request line (12 in, 12 out).
test "$(wc -l < "$service_dir/responses.jsonl")" -eq 12
grep -q '"id":"ok-1"' "$service_dir/responses.jsonl"
grep '"id":"q-5"' "$service_dir/responses.jsonl" | grep OverloadError \
  | grep -q retry_after_ms
grep '"status":"error"' "$service_dir/responses.jsonl" | grep -q ParseError
# Identical requests must produce identical result bits (crc match),
# the same bit-identity batch mode guarantees.
crc1=$(grep '"id":"ok-1"' "$service_dir/responses.jsonl" \
  | grep -o '"c_crc32":[0-9]*' | cut -d: -f2)
crc2=$(grep '"id":"ok-1-again"' "$service_dir/responses.jsonl" \
  | grep -o '"c_crc32":[0-9]*' | cut -d: -f2)
test -n "$crc1" && test "$crc1" = "$crc2"
# The metrics snapshot flushed on shutdown passes the schema lint.
timeout 60 ./build/examples/example_trace_lint --metrics "$service_dir/metrics.json"
grep -q "service.completed" "$service_dir/metrics.json"
rm -f "$service_dir/requests.fifo"

echo "==== tier-1: supervisor chaos (isolated suite + kill -9 = same bytes) ===="
# The crash-isolation headline: a process-isolated sweep with workers
# randomly abort()ing (worker_abort fires in the child; retries re-draw
# per attempt, so every arm eventually lands) AND an external kill -9
# of a live worker mid-sweep must produce a CSV byte-identical to the
# plain in-process run — crashes cost retries, never correctness.
proc_dir=build/proc_smoke
rm -rf "$proc_dir" && mkdir -p "$proc_dir"
timeout 600 ./build/examples/example_nmdt_cli --cmd suite --scale tiny --k 8 \
  --out "$proc_dir/ref.csv"
timeout 600 ./build/examples/example_nmdt_cli --cmd suite --scale tiny --k 8 \
  --isolate-workers 3 --fault-site worker_abort --fault-rate 0.08 \
  --fault-seed 7 --metrics "$proc_dir/metrics.json" \
  --out "$proc_dir/isolated.csv" &
suite_pid=$!
# Best-effort external kill: SIGKILL one forked worker while the sweep
# runs (the supervisor must respawn it and re-dispatch its arm).  The
# backgrounded pid is the `timeout` wrapper, so workers are two levels
# down: timeout -> nmdt_cli -> worker.
for _ in 1 2 3 4 5 6 7 8 9 10; do
  cli=$(pgrep -P "$suite_pid" | head -n 1 || true)
  victim=""
  if [[ -n "$cli" ]]; then victim=$(pgrep -P "$cli" | head -n 1 || true); fi
  if [[ -n "$victim" ]]; then kill -9 "$victim" 2>/dev/null || true; break; fi
  sleep 0.05
done
rc=0; wait "$suite_pid" || rc=$?
test "$rc" -eq 0
cmp "$proc_dir/ref.csv" "$proc_dir/isolated.csv"
# The supervisor really did absorb crashes (injected and/or kill -9).
crashes=$(grep -o '"proc.crashes": [0-9]*' "$proc_dir/metrics.json" \
  | grep -o '[0-9]*$')
test -n "$crashes" && test "$crashes" -ge 1
timeout 60 ./build/examples/example_trace_lint --metrics "$proc_dir/metrics.json"

if [[ "$run_tsan" == 1 ]]; then
  echo "==== tier-1: tsan preset (concurrency tests) ===="
  timeout 600 cmake --preset tsan
  timeout 1800 cmake --build --preset tsan -j
  timeout 1800 ctest --preset tsan --output-on-failure
fi

if [[ "$run_asan" == 1 ]]; then
  echo "==== tier-1: asan-ubsan preset (robustness tests) ===="
  timeout 600 cmake --preset asan-ubsan
  timeout 1800 cmake --build --preset asan-ubsan -j
  timeout 1800 ctest --preset asan-ubsan --output-on-failure
fi

echo "==== tier-1: OK ===="
