#!/usr/bin/env bash
# Tier-1 verification: the standard release build + full test suite
# (ROADMAP.md), followed by the tsan preset re-running the concurrency
# tests (thread pool, plan cache, parallel suite runner, and the
# intra-kernel shard fan-out) under ThreadSanitizer.
#
# Usage: scripts/tier1.sh [--no-tsan]
set -euo pipefail
cd "$(dirname "$0")/.."

run_tsan=1
if [[ "${1:-}" == "--no-tsan" ]]; then run_tsan=0; fi

echo "==== tier-1: standard build + ctest ===="
cmake -B build -S .
cmake --build build -j
ctest --test-dir build --output-on-failure -j

if [[ "$run_tsan" == 1 ]]; then
  echo "==== tier-1: tsan preset (concurrency tests) ===="
  cmake --preset tsan
  cmake --build --preset tsan -j
  ctest --preset tsan --output-on-failure
fi

echo "==== tier-1: OK ===="
